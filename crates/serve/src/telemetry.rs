//! End-to-end serving telemetry: stage tracing, lock-free log-bucketed
//! latency histograms, and per-domain prediction-distribution drift.
//!
//! One [`Telemetry`] registry per [`crate::PredictServer`] holds everything
//! the observability surface reads:
//!
//! * **Stage histograms** — every request's time is attributed to the six
//!   [`Stage`]s of the serving path (HTTP parse, queue wait, batch assembly,
//!   cache lookup, kernel inference, response write). Recording is a couple
//!   of `Relaxed` `fetch_add`s on fixed power-of-two buckets
//!   ([`LatencyHistogram`]): no locks, no allocation, wall-clock only — the
//!   engine's bit-exactness contract is untouched. Worker stages are kept
//!   per worker thread so `/metrics` can label series by worker id;
//!   snapshots merge exactly (bucket counts are plain sums).
//! * **Kernel histograms** — the registry implements
//!   [`dtdbd_tensor::KernelTimers`], so inference graphs report per-kernel
//!   (GEMM / conv1d / embedding-gather) durations into the same bucket
//!   scheme.
//! * **Drift tracking** — a [`DriftTracker`] accumulates the live
//!   per-domain distribution of predicted fake-probabilities and scores it
//!   against a training-time [`DomainBaseline`] (persisted through the
//!   checkpoint v2 `telemetry.baseline` side-state chunk): the divergence
//!   surfaces as a prediction-mean shift and a bucketed total-variation
//!   (PSI-style) score per domain.
//!
//! The serving layers thread a cheap [`TraceContext`] handle (an optional
//! `Arc`) through `http.rs`, `server.rs`, `session.rs` and `cache.rs`; a
//! disabled context skips every clock read.

use dtdbd_models::codec::{ByteReader, ByteWriter};
use dtdbd_tensor::KernelTimers;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Side-state tag under which a checkpoint carries the serialized
/// [`DomainBaseline`] (a container-level chunk: models never import it).
pub const BASELINE_TAG: &str = "telemetry.baseline";

/// Number of power-of-two latency buckets. Bucket `i >= 1` covers
/// `[2^(i-1), 2^i)` nanoseconds; bucket 0 holds sub-nanosecond (i.e. zero)
/// measurements; the last bucket also absorbs everything above its lower
/// bound (`2^38` ns ≈ 4.6 minutes — far beyond any serving timeout).
pub const LATENCY_BUCKETS: usize = 40;

/// Number of equal-width fake-probability buckets the drift tracker uses
/// over `[0, 1]`.
pub const DRIFT_BUCKETS: usize = 10;

/// Kernels reported by the tensor layer's timing hooks, in the order their
/// histograms are kept. Unknown kernel names fall into a trailing "other"
/// slot rather than being dropped.
pub const KERNEL_NAMES: [&str; 3] = ["matmul", "conv1d", "embedding"];

/// The six stages a request's wall-clock time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Reading and parsing the HTTP request (first buffered byte to a
    /// complete head + body).
    HttpParse,
    /// Sitting in a micro-batch queue before a worker drained it.
    QueueWait,
    /// The batching linger window: how long the worker held the batch open
    /// waiting for companions (recorded once per batch).
    BatchAssembly,
    /// Prediction-cache lookup on the submit path.
    CacheLookup,
    /// The forward pass, attributed pro-rata: a batch of `n` records
    /// `total / n` for each of its `n` requests, with the integer-division
    /// remainder attributed to the last request so the stage sum reconciles
    /// exactly with the measured span.
    Inference,
    /// Serializing and writing the HTTP response.
    ResponseWrite,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::HttpParse,
        Stage::QueueWait,
        Stage::BatchAssembly,
        Stage::CacheLookup,
        Stage::Inference,
        Stage::ResponseWrite,
    ];

    /// Stable snake_case name used as the `stage` label in `/metrics` and
    /// the key in `/stats`.
    pub fn name(self) -> &'static str {
        match self {
            Stage::HttpParse => "http_parse",
            Stage::QueueWait => "queue_wait",
            Stage::BatchAssembly => "batch_assembly",
            Stage::CacheLookup => "cache_lookup",
            Stage::Inference => "inference",
            Stage::ResponseWrite => "response_write",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::HttpParse => 0,
            Stage::QueueWait => 1,
            Stage::BatchAssembly => 2,
            Stage::CacheLookup => 3,
            Stage::Inference => 4,
            Stage::ResponseWrite => 5,
        }
    }
}

/// Bucket index a duration of `ns` nanoseconds falls into: the position of
/// its highest set bit, clamped to the last bucket (0 ns → bucket 0).
pub fn latency_bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// Exclusive upper bound of bucket `i` in nanoseconds; `None` for the last
/// bucket, which is unbounded (`+Inf` in Prometheus terms).
pub fn bucket_upper_bound_ns(i: usize) -> Option<u64> {
    if i + 1 >= LATENCY_BUCKETS {
        None
    } else {
        Some(1u64 << i)
    }
}

fn bucket_lower_bound_ns(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A lock-free latency histogram: fixed power-of-two buckets with `u64`
/// atomic counts plus an exact running sum. Recording is wait-free
/// (`Relaxed` `fetch_add`s); snapshots of two histograms merge exactly.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record_ns(&self, ns: u64) {
        self.record_many_ns(ns, 1);
    }

    /// Record `n` observations of `ns_each` nanoseconds with three atomic
    /// adds — how a batch of `n` requests attributes its inference time
    /// pro-rata without `n` separate record calls.
    pub fn record_many_ns(&self, ns_each: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[latency_bucket(ns_each)].fetch_add(n, Ordering::Relaxed);
        self.sum_ns
            .fetch_add(ns_each.saturating_mul(n), Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Split a measured batch span of `total_ns` over its `n` items:
    /// `n - 1` observations of `total_ns / n` plus one of `total_ns / n`
    /// **plus the division remainder**, so the recorded sum equals
    /// `total_ns` exactly (plain `record_many_ns(total/n, n)` would lose up
    /// to `n - 1` ns per batch and the stage sums would drift from the
    /// measured spans).
    pub fn record_batch_ns(&self, total_ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        let each = total_ns / n;
        let last = each + total_ns % n;
        if n > 1 {
            self.buckets[latency_bucket(each)].fetch_add(n - 1, Ordering::Relaxed);
        }
        self.buckets[latency_bucket(last)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(total_ns, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Copy the current counters out. Individual loads are `Relaxed`, so a
    /// snapshot taken under concurrent recording may be mid-request by one
    /// count — fine for monitoring, and exact once recording quiesces.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`LatencyHistogram`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`latency_bucket`]).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Exact sum of every recorded duration, in nanoseconds.
    pub sum_ns: u64,
    /// Total observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; LATENCY_BUCKETS],
            sum_ns: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An all-zero snapshot.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Exact merge: bucket counts, sums and totals are plain sums, so
    /// merging per-worker snapshots loses nothing.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.count += other.count;
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds by linear
    /// interpolation inside the containing bucket. 0 when empty. The
    /// estimate is bounded by the bucket's `[2^(i-1), 2^i)` range, so the
    /// relative error is at most 2× — the usual log-bucket trade.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lo = bucket_lower_bound_ns(i) as f64;
                let hi = match bucket_upper_bound_ns(i) {
                    Some(hi) => hi as f64,
                    None => return lo, // unbounded tail bucket
                };
                let frac = (target - cum) as f64 / c as f64;
                return lo + frac * (hi - lo);
            }
            cum += c;
        }
        bucket_lower_bound_ns(LATENCY_BUCKETS - 1) as f64
    }

    /// Mean recorded duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// One recorder's set of per-stage histograms (the wire set or one worker).
#[derive(Debug, Default)]
struct StageSet {
    stages: [LatencyHistogram; Stage::ALL.len()],
}

impl StageSet {
    fn record(&self, stage: Stage, ns: u64) {
        self.stages[stage.index()].record_ns(ns);
    }

    fn record_many(&self, stage: Stage, ns_each: u64, n: u64) {
        self.stages[stage.index()].record_many_ns(ns_each, n);
    }

    fn record_batch(&self, stage: Stage, total_ns: u64, n: u64) {
        self.stages[stage.index()].record_batch_ns(total_ns, n);
    }

    fn snapshot(&self) -> Vec<(Stage, HistogramSnapshot)> {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.stages[s.index()].snapshot()))
            .collect()
    }
}

/// The per-server telemetry registry. One instance lives behind an `Arc` in
/// the serving core; connection threads and prediction workers record into
/// it through [`TraceContext`] handles, and the tensor layer reports kernel
/// durations into it via the [`KernelTimers`] impl.
pub struct Telemetry {
    arch: &'static str,
    /// Stages recorded by connection threads (HTTP parse, cache lookup,
    /// response write). Labeled `worker="http"` in `/metrics`.
    wire: StageSet,
    /// Stages recorded by each prediction worker (queue wait, batch
    /// assembly, inference), kept per worker for worker-id labels.
    workers: Vec<StageSet>,
    /// Per-kernel histograms in [`KERNEL_NAMES`] order, plus an "other"
    /// slot for names this build does not know.
    kernels: [LatencyHistogram; KERNEL_NAMES.len() + 1],
    drift: DriftTracker,
}

impl Telemetry {
    /// A registry for `workers` prediction workers serving `arch`, tracking
    /// drift over `n_domains` domains against an optional baseline.
    pub fn new(
        arch: &'static str,
        workers: usize,
        n_domains: usize,
        baseline: Option<DomainBaseline>,
    ) -> Self {
        Self {
            arch,
            wire: StageSet::default(),
            workers: (0..workers).map(|_| StageSet::default()).collect(),
            kernels: std::array::from_fn(|_| LatencyHistogram::new()),
            drift: DriftTracker::new(n_domains, baseline),
        }
    }

    /// Architecture tag used as the `arch` label on every metric.
    pub fn arch(&self) -> &'static str {
        self.arch
    }

    /// The drift tracker (live per-domain prediction statistics).
    pub fn drift(&self) -> &DriftTracker {
        &self.drift
    }

    fn record_wire(&self, stage: Stage, ns: u64) {
        self.wire.record(stage, ns);
    }

    fn record_worker(&self, worker: usize, stage: Stage, ns: u64) {
        if let Some(set) = self.workers.get(worker) {
            set.record(stage, ns);
        }
    }

    fn record_worker_many(&self, worker: usize, stage: Stage, ns_each: u64, n: u64) {
        if let Some(set) = self.workers.get(worker) {
            set.record_many(stage, ns_each, n);
        }
    }

    fn record_worker_batch(&self, worker: usize, stage: Stage, total_ns: u64, n: u64) {
        if let Some(set) = self.workers.get(worker) {
            set.record_batch(stage, total_ns, n);
        }
    }

    /// Copy every counter out for rendering (`/stats`, `/metrics`).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut recorders = Vec::with_capacity(self.workers.len() + 1);
        recorders.push(("http".to_string(), self.wire.snapshot()));
        for (i, set) in self.workers.iter().enumerate() {
            recorders.push((i.to_string(), set.snapshot()));
        }
        let mut kernels: Vec<(&'static str, HistogramSnapshot)> = KERNEL_NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, self.kernels[i].snapshot()))
            .collect();
        kernels.push(("other", self.kernels[KERNEL_NAMES.len()].snapshot()));
        TelemetrySnapshot {
            arch: self.arch,
            recorders,
            kernels,
            drift: self.drift.scores(),
            predictions_non_finite: self.drift.non_finite_count(),
        }
    }
}

impl KernelTimers for Telemetry {
    fn record(&self, kernel: &'static str, ns: u64) {
        let slot = KERNEL_NAMES
            .iter()
            .position(|&k| k == kernel)
            .unwrap_or(KERNEL_NAMES.len());
        self.kernels[slot].record_ns(ns);
    }
}

/// An owned copy of every telemetry counter, taken by [`Telemetry::snapshot`].
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Architecture label.
    pub arch: &'static str,
    /// Per-recorder stage histograms: `("http", ...)` for the connection
    /// threads, then `("0", ...)`, `("1", ...)` per prediction worker.
    pub recorders: Vec<(String, Vec<(Stage, HistogramSnapshot)>)>,
    /// Per-kernel histograms ([`KERNEL_NAMES`] plus `"other"`).
    pub kernels: Vec<(&'static str, HistogramSnapshot)>,
    /// Per-domain drift scores.
    pub drift: Vec<DomainDrift>,
    /// Predictions rejected from drift tracking for a NaN/infinite
    /// probability.
    pub predictions_non_finite: u64,
}

impl TelemetrySnapshot {
    /// The given stage merged exactly across every recorder.
    pub fn stage_total(&self, stage: Stage) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::empty();
        for (_, stages) in &self.recorders {
            for (s, h) in stages {
                if *s == stage {
                    total.merge(h);
                }
            }
        }
        total
    }
}

/// A cheap, cloneable handle the serving layers thread through the request
/// path. Disabled (telemetry off) it is a `None` and every record method —
/// including [`TraceContext::span`] — skips the clock read entirely.
#[derive(Clone, Default)]
pub struct TraceContext {
    telemetry: Option<Arc<Telemetry>>,
}

impl TraceContext {
    /// A handle recording into `telemetry`.
    pub fn new(telemetry: Arc<Telemetry>) -> Self {
        Self {
            telemetry: Some(telemetry),
        }
    }

    /// The no-op handle (telemetry disabled).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// `true` when records actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// The registry behind this handle, if enabled.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// RAII span over a wire-side stage: starts the clock now (if enabled)
    /// and records the elapsed time into `stage` when dropped.
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span {
            armed: self
                .telemetry
                .as_deref()
                .map(|t| (t, stage, Instant::now())),
        }
    }

    /// Record a wire-side stage duration measured by the caller.
    pub fn record_ns(&self, stage: Stage, ns: u64) {
        if let Some(t) = self.telemetry.as_deref() {
            t.record_wire(stage, ns);
        }
    }

    /// Record a worker-side stage duration.
    pub fn record_worker_ns(&self, worker: usize, stage: Stage, ns: u64) {
        if let Some(t) = self.telemetry.as_deref() {
            t.record_worker(worker, stage, ns);
        }
    }

    /// Record `n` pro-rata observations of a worker-side stage (batched
    /// inference time split evenly over the batch).
    pub fn record_worker_many_ns(&self, worker: usize, stage: Stage, ns_each: u64, n: u64) {
        if let Some(t) = self.telemetry.as_deref() {
            t.record_worker_many(worker, stage, ns_each, n);
        }
    }

    /// Attribute a measured batch span of `total_ns` pro-rata over `n`
    /// items, giving the division remainder to the last item so the
    /// recorded stage sum equals `total_ns` exactly.
    pub fn record_worker_batch_ns(&self, worker: usize, stage: Stage, total_ns: u64, n: u64) {
        if let Some(t) = self.telemetry.as_deref() {
            t.record_worker_batch(worker, stage, total_ns, n);
        }
    }

    /// Feed one served prediction into the drift tracker.
    pub fn observe_prediction(&self, domain: usize, fake_prob: f32) {
        if let Some(t) = self.telemetry.as_deref() {
            t.drift.observe(domain, fake_prob);
        }
    }
}

/// RAII guard from [`TraceContext::span`]; records its stage on drop.
pub struct Span<'a> {
    armed: Option<(&'a Telemetry, Stage, Instant)>,
}

impl Span<'_> {
    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((t, stage, started)) = self.armed.take() {
            t.record_wire(stage, started.elapsed().as_nanos() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-domain drift
// ---------------------------------------------------------------------------

/// Frozen per-domain prediction-distribution statistics captured at training
/// time (count, probability sum, and a [`DRIFT_BUCKETS`]-bucket histogram of
/// fake-probabilities per domain). Serialized into the checkpoint's
/// `telemetry.baseline` side-state chunk; at serving time the live traffic
/// is scored against it.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainBaseline {
    domains: Vec<DomainStats>,
}

/// One domain's frozen prediction statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DomainStats {
    /// Observations behind this baseline.
    pub count: u64,
    /// Sum of predicted fake-probabilities (f64 to keep the mean exact over
    /// large captures).
    pub sum: f64,
    /// Histogram of fake-probabilities over [`DRIFT_BUCKETS`] equal-width
    /// buckets spanning `[0, 1]`.
    pub buckets: [u64; DRIFT_BUCKETS],
}

impl DomainStats {
    /// Mean predicted fake-probability, `None` without observations.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Bucket of a fake-probability in the drift histograms. Callers must have
/// screened out non-finite probabilities: `NaN.clamp(...)` stays NaN and the
/// `as usize` cast would silently send it to bucket 0, skewing the
/// total-variation score toward the lowest bucket.
fn prob_bucket(p: f32) -> usize {
    debug_assert!(
        p.is_finite(),
        "non-finite probabilities are counted, not bucketed"
    );
    ((p.clamp(0.0, 1.0) * DRIFT_BUCKETS as f32) as usize).min(DRIFT_BUCKETS - 1)
}

impl DomainBaseline {
    /// Build a baseline over `n_domains` domains from `(domain, fake_prob)`
    /// observations — typically a trained model's predictions over its
    /// validation split (see `Checkpoint::with_telemetry_baseline`).
    /// Out-of-range domains are ignored.
    pub fn from_observations<I>(n_domains: usize, observations: I) -> Self
    where
        I: IntoIterator<Item = (usize, f32)>,
    {
        let mut domains = vec![DomainStats::default(); n_domains];
        for (domain, prob) in observations {
            if !prob.is_finite() {
                continue; // a NaN would silently land in bucket 0
            }
            if let Some(stats) = domains.get_mut(domain) {
                stats.count += 1;
                stats.sum += f64::from(prob.clamp(0.0, 1.0));
                stats.buckets[prob_bucket(prob)] += 1;
            }
        }
        Self { domains }
    }

    /// Number of domains covered.
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// The frozen statistics of one domain.
    pub fn domain(&self, d: usize) -> Option<&DomainStats> {
        self.domains.get(d)
    }

    /// Serialize for the `telemetry.baseline` chunk (little-endian, f64
    /// sums as bit patterns — bit-exact round trips).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(1); // chunk format version
        w.u32(self.domains.len() as u32);
        for stats in &self.domains {
            w.u64(stats.count);
            w.u64(stats.sum.to_bits());
            for &b in &stats.buckets {
                w.u64(b);
            }
        }
        w.into_bytes()
    }

    /// Decode a `telemetry.baseline` chunk body. Errors are human-readable
    /// details (the checkpoint layer wraps them into its typed errors).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let version = r.u32().map_err(|e| e.to_string())?;
        if version != 1 {
            return Err(format!("unsupported baseline chunk version {version}"));
        }
        let n_domains = r.u32().map_err(|e| e.to_string())? as usize;
        let mut domains = Vec::with_capacity(n_domains.min(1024));
        for _ in 0..n_domains {
            let count = r.u64().map_err(|e| e.to_string())?;
            let sum = f64::from_bits(r.u64().map_err(|e| e.to_string())?);
            if !sum.is_finite() {
                return Err("baseline probability sum is not finite".to_string());
            }
            let mut buckets = [0u64; DRIFT_BUCKETS];
            for b in &mut buckets {
                *b = r.u64().map_err(|e| e.to_string())?;
            }
            let bucket_total: u64 = buckets.iter().sum();
            if bucket_total != count {
                return Err(format!(
                    "baseline bucket counts sum to {bucket_total}, expected {count}"
                ));
            }
            domains.push(DomainStats {
                count,
                sum,
                buckets,
            });
        }
        if !r.is_exhausted() {
            return Err(format!(
                "{} trailing bytes after baseline chunk",
                r.remaining()
            ));
        }
        Ok(Self { domains })
    }
}

/// One atomic live-statistics cell per domain.
#[derive(Debug, Default)]
struct LiveDomain {
    count: AtomicU64,
    /// Sum of fake-probabilities in fixed-point micro-units (`prob * 1e6`,
    /// rounded), so accumulation is a lock-free integer `fetch_add`.
    sum_micro: AtomicU64,
    buckets: [AtomicU64; DRIFT_BUCKETS],
}

/// Online per-domain population statistics of the predictions actually
/// served, scored against an optional training-time [`DomainBaseline`].
/// Observation is lock-free (three `Relaxed` `fetch_add`s).
pub struct DriftTracker {
    live: Vec<LiveDomain>,
    baseline: Option<DomainBaseline>,
    /// Predictions whose probability was NaN or infinite: counted here
    /// (surfaced in `/stats` and `/metrics`) and **excluded** from the
    /// buckets and the mean, where a silent `as usize` cast used to fold
    /// them into bucket 0.
    non_finite: AtomicU64,
}

/// Drift scores of one domain, as surfaced in `/stats` and `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainDrift {
    /// Domain index.
    pub domain: usize,
    /// Live predictions observed for this domain.
    pub live_count: u64,
    /// Mean live fake-probability, `None` without traffic.
    pub live_mean: Option<f64>,
    /// Observations behind the baseline (0 without a baseline).
    pub baseline_count: u64,
    /// Baseline mean fake-probability, `None` without a baseline (or an
    /// empty baseline domain).
    pub baseline_mean: Option<f64>,
    /// `|live_mean - baseline_mean|`; `None` unless both sides have data.
    pub mean_shift: Option<f64>,
    /// Bucketed total-variation distance `0.5 * Σ |live_i - base_i|` over
    /// the normalized [`DRIFT_BUCKETS`]-bucket histograms (a PSI-style
    /// score in `[0, 1]`); `None` unless both sides have data.
    pub score: Option<f64>,
}

impl DriftTracker {
    /// A tracker over `n_domains` domains. A baseline whose domain count
    /// differs is rejected upstream (`ConfigError::BaselineGeometry`); here
    /// it would simply leave the extra domains unscored.
    pub fn new(n_domains: usize, baseline: Option<DomainBaseline>) -> Self {
        Self {
            live: (0..n_domains).map(|_| LiveDomain::default()).collect(),
            baseline,
            non_finite: AtomicU64::new(0),
        }
    }

    /// The baseline being scored against, if any.
    pub fn baseline(&self) -> Option<&DomainBaseline> {
        self.baseline.as_ref()
    }

    /// Number of domains tracked.
    pub fn n_domains(&self) -> usize {
        self.live.len()
    }

    /// Record one served prediction (lock-free; out-of-range domains are
    /// ignored — the encoder already rejects them at the wire). A NaN or
    /// infinite probability only bumps the non-finite counter: it must not
    /// skew the distribution it failed to be part of.
    pub fn observe(&self, domain: usize, fake_prob: f32) {
        if !fake_prob.is_finite() {
            self.non_finite.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(cell) = self.live.get(domain) {
            let p = fake_prob.clamp(0.0, 1.0);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum_micro
                .fetch_add((f64::from(p) * 1e6).round() as u64, Ordering::Relaxed);
            cell.buckets[prob_bucket(p)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Predictions rejected for a non-finite probability.
    pub fn non_finite_count(&self) -> u64 {
        self.non_finite.load(Ordering::Relaxed)
    }

    /// Score every domain's live distribution against the baseline.
    pub fn scores(&self) -> Vec<DomainDrift> {
        self.live
            .iter()
            .enumerate()
            .map(|(domain, cell)| {
                let live_count = cell.count.load(Ordering::Relaxed);
                let live_mean = (live_count > 0).then(|| {
                    cell.sum_micro.load(Ordering::Relaxed) as f64 / 1e6 / live_count as f64
                });
                let base = self.baseline.as_ref().and_then(|b| b.domain(domain));
                let baseline_count = base.map_or(0, |b| b.count);
                let baseline_mean = base.and_then(DomainStats::mean);
                let mean_shift = match (live_mean, baseline_mean) {
                    (Some(l), Some(b)) => Some((l - b).abs()),
                    _ => None,
                };
                let score = base.filter(|b| b.count > 0 && live_count > 0).map(|b| {
                    let mut tv = 0.0f64;
                    for (i, bucket) in cell.buckets.iter().enumerate() {
                        let live_frac = bucket.load(Ordering::Relaxed) as f64 / live_count as f64;
                        let base_frac = b.buckets[i] as f64 / b.count as f64;
                        tv += (live_frac - base_frac).abs();
                    }
                    tv / 2.0
                });
                DomainDrift {
                    domain,
                    live_count,
                    live_mean,
                    baseline_count,
                    baseline_mean,
                    mean_shift,
                    score,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_follows_powers_of_two() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 1);
        assert_eq!(latency_bucket(2), 2);
        assert_eq!(latency_bucket(3), 2);
        assert_eq!(latency_bucket(4), 3);
        assert_eq!(latency_bucket(1023), 10);
        assert_eq!(latency_bucket(1024), 11);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
        // Every indexed value sits inside its bucket's bounds.
        for ns in [0u64, 1, 7, 999, 1_000_000, 123_456_789] {
            let i = latency_bucket(ns);
            assert!(ns >= bucket_lower_bound_ns(i));
            if let Some(hi) = bucket_upper_bound_ns(i) {
                assert!(ns < hi, "{ns} must fall below bucket {i}'s bound {hi}");
            }
        }
    }

    #[test]
    fn merge_is_exact() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let all = LatencyHistogram::new();
        for (i, ns) in [3u64, 120, 4_000, 90_000, 2_000_000, 0].iter().enumerate() {
            let h = if i % 2 == 0 { &a } else { &b };
            h.record_ns(*ns);
            all.record_ns(*ns);
        }
        a.record_many_ns(550, 4);
        all.record_many_ns(550, 4);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        assert_eq!(merged.count, 10);
        assert_eq!(
            merged.sum_ns,
            3 + 120 + 4_000 + 90_000 + 2_000_000 + 550 * 4
        );
    }

    #[test]
    fn quantiles_land_inside_their_bucket() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ns(1_000); // bucket [512, 1024)
        }
        for _ in 0..10 {
            h.record_ns(1_000_000); // bucket [524288, 1048576)
        }
        let snap = h.snapshot();
        let p50 = snap.quantile_ns(0.50);
        assert!((512.0..1024.0).contains(&p50), "p50 was {p50}");
        let p99 = snap.quantile_ns(0.99);
        assert!(
            (524_288.0..1_048_576.0).contains(&p99),
            "p99 was {p99} (must reach the slow bucket)"
        );
        assert_eq!(HistogramSnapshot::empty().quantile_ns(0.5), 0.0);
        let mean = snap.mean_ns();
        assert!((mean - (90.0 * 1_000.0 + 10.0 * 1_000_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn batch_attribution_reconciles_exactly_with_the_measured_span() {
        // total not divisible by n: plain pro-rata would record
        // (total / n) * n and lose the remainder every batch.
        for (total, n) in [(10_007u64, 8u64), (999, 7), (5, 3), (42, 1), (0, 4)] {
            let h = LatencyHistogram::new();
            h.record_batch_ns(total, n);
            let snap = h.snapshot();
            assert_eq!(snap.count, n, "batch of {n} counts {n} observations");
            assert_eq!(
                snap.sum_ns, total,
                "recorded sum must equal the measured {total}ns span exactly"
            );
        }
        // Accumulated over many batches the sums still reconcile exactly.
        let h = LatencyHistogram::new();
        let mut expected = 0u64;
        for batch in 1..=100u64 {
            let total = batch * 1_000 + 3; // never divisible by 8
            h.record_batch_ns(total, 8);
            expected += total;
        }
        assert_eq!(h.snapshot().sum_ns, expected);
        // n == 0 records nothing at all.
        let h = LatencyHistogram::new();
        h.record_batch_ns(1_000, 0);
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().sum_ns, 0);
        // End to end through the worker-side trace handle.
        let t = Telemetry::new("TextCNN-S", 1, 1, None);
        let ctx = TraceContext::new(Arc::new(t));
        ctx.record_worker_batch_ns(0, Stage::Inference, 10_007, 8);
        let snap = ctx.telemetry().unwrap().snapshot();
        assert_eq!(snap.stage_total(Stage::Inference).count, 8);
        assert_eq!(snap.stage_total(Stage::Inference).sum_ns, 10_007);
    }

    #[test]
    fn non_finite_predictions_are_counted_not_bucketed() {
        let tracker = DriftTracker::new(1, None);
        tracker.observe(0, 0.5);
        tracker.observe(0, f32::NAN);
        tracker.observe(0, f32::INFINITY);
        tracker.observe(0, f32::NEG_INFINITY);
        assert_eq!(tracker.non_finite_count(), 3);
        let scores = tracker.scores();
        assert_eq!(
            scores[0].live_count, 1,
            "non-finite observations must not join the distribution"
        );
        assert!(
            (scores[0].live_mean.unwrap() - 0.5).abs() < 1e-6,
            "the mean must exclude the rejected observations"
        );
        // The snapshot surfaces the counter for /stats and /metrics.
        let t = Telemetry::new("TextCNN-S", 1, 1, None);
        let ctx = TraceContext::new(Arc::new(t));
        ctx.observe_prediction(0, f32::NAN);
        ctx.observe_prediction(0, 0.25);
        let snap = ctx.telemetry().unwrap().snapshot();
        assert_eq!(snap.predictions_non_finite, 1);
        assert_eq!(snap.drift[0].live_count, 1);
    }

    #[test]
    fn baselines_skip_non_finite_observations() {
        let base = DomainBaseline::from_observations(
            1,
            [(0, 0.2f32), (0, f32::NAN), (0, 0.4), (0, f32::INFINITY)],
        );
        let stats = base.domain(0).unwrap();
        assert_eq!(stats.count, 2);
        assert!((stats.mean().unwrap() - 0.3).abs() < 1e-6);
        assert_eq!(stats.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn baseline_round_trips_and_rejects_garbage() {
        let base = DomainBaseline::from_observations(
            3,
            [
                (0, 0.1f32),
                (0, 0.9),
                (1, 0.5),
                (2, 0.0),
                (2, 1.0),
                (7, 0.5), // out of range: ignored
            ],
        );
        assert_eq!(base.n_domains(), 3);
        assert_eq!(base.domain(0).unwrap().count, 2);
        assert_eq!(base.domain(1).unwrap().mean(), Some(0.5));
        let bytes = base.to_bytes();
        let restored = DomainBaseline::from_bytes(&bytes).expect("round trip");
        assert_eq!(restored, base);

        assert!(DomainBaseline::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 9;
        assert!(DomainBaseline::from_bytes(&wrong_version).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(DomainBaseline::from_bytes(&trailing).is_err());
        // Corrupt a bucket count so buckets no longer sum to the count.
        let mut inconsistent = bytes;
        let last = inconsistent.len() - 1;
        inconsistent[last] ^= 0x01;
        assert!(DomainBaseline::from_bytes(&inconsistent).is_err());
    }

    #[test]
    fn skewed_traffic_drifts_more_than_matching_traffic() {
        // Baseline: domain 0 predictions centred near 0.2.
        let baseline = DomainBaseline::from_observations(
            1,
            (0..100).map(|i| (0, 0.15 + (i % 10) as f32 * 0.01)),
        );
        let matching = DriftTracker::new(1, Some(baseline.clone()));
        let skewed = DriftTracker::new(1, Some(baseline));
        for i in 0..200 {
            matching.observe(0, 0.15 + (i % 10) as f32 * 0.01);
            skewed.observe(0, 0.85 + (i % 10) as f32 * 0.01);
        }
        let m = &matching.scores()[0];
        let s = &skewed.scores()[0];
        assert!(m.score.unwrap() < 0.05, "matching traffic ~no drift: {m:?}");
        assert!(
            s.score.unwrap() > 0.9,
            "skewed traffic must score high: {s:?}"
        );
        assert!(s.mean_shift.unwrap() > 10.0 * m.mean_shift.unwrap());
        assert_eq!(s.live_count, 200);
        assert_eq!(s.baseline_count, 100);
    }

    #[test]
    fn drift_without_baseline_reports_live_stats_only() {
        let tracker = DriftTracker::new(2, None);
        tracker.observe(0, 0.75);
        tracker.observe(0, 0.25);
        let scores = tracker.scores();
        assert_eq!(scores[0].live_count, 2);
        assert!((scores[0].live_mean.unwrap() - 0.5).abs() < 1e-6);
        assert_eq!(scores[0].score, None);
        assert_eq!(scores[0].mean_shift, None);
        assert_eq!(scores[1].live_count, 0);
        assert_eq!(scores[1].live_mean, None);
    }

    #[test]
    fn telemetry_registry_snapshots_stages_workers_and_kernels() {
        let t = Telemetry::new("TextCNN-S", 2, 3, None);
        let ctx = TraceContext::new(Arc::new(t));
        ctx.record_ns(Stage::HttpParse, 1_000);
        ctx.record_worker_ns(0, Stage::QueueWait, 2_000);
        ctx.record_worker_many_ns(1, Stage::Inference, 5_000, 8);
        ctx.observe_prediction(1, 0.7);
        {
            let _span = ctx.span(Stage::ResponseWrite);
        }
        let telemetry = ctx.telemetry().unwrap();
        KernelTimers::record(telemetry.as_ref(), "matmul", 999);
        KernelTimers::record(telemetry.as_ref(), "mystery", 5);
        let snap = telemetry.snapshot();
        assert_eq!(snap.arch, "TextCNN-S");
        assert_eq!(snap.recorders.len(), 3, "http + 2 workers");
        assert_eq!(snap.stage_total(Stage::HttpParse).count, 1);
        assert_eq!(snap.stage_total(Stage::QueueWait).count, 1);
        assert_eq!(snap.stage_total(Stage::Inference).count, 8);
        assert_eq!(snap.stage_total(Stage::Inference).sum_ns, 40_000);
        assert_eq!(snap.stage_total(Stage::ResponseWrite).count, 1);
        let kernels: Vec<_> = snap.kernels.iter().map(|(n, h)| (*n, h.count)).collect();
        assert!(kernels.contains(&("matmul", 1)));
        assert!(kernels.contains(&("other", 1)));
        assert_eq!(snap.drift[1].live_count, 1);

        // A disabled context records nowhere and spans are free.
        let off = TraceContext::disabled();
        assert!(!off.is_enabled());
        off.record_ns(Stage::HttpParse, 1);
        let _ = off.span(Stage::CacheLookup);
    }
}
