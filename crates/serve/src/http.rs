//! Dependency-free HTTP/1.1 front-end for the micro-batching server.
//!
//! [`HttpServer`] puts a real wire in front of [`PredictServer`] through one
//! of two **connection models** (selected by [`HttpConfig::connection_model`]
//! / [`crate::ServerBuilder::connection_model`]):
//!
//! * **epoll** (Linux default, see [`crate::poll`]) — one event-loop thread
//!   multiplexes every connection nonblocking through a raw-syscall epoll
//!   instance; complete requests are handed to `connection_workers`
//!   dispatcher threads, and both HTTP deadlines live on a
//!   [`crate::timer::TimerWheel`]. Tens of thousands of mostly-idle
//!   keep-alive sockets cost a slab slot each, not a thread.
//! * **pool** (portable fallback, default elsewhere) — a blocking
//!   `std::net::TcpListener` accept loop feeding a bounded pool of
//!   connection-handler threads (`connection_workers` threads behind a
//!   `backlog`-deep hand-off queue; when both are full the acceptor answers
//!   `503` instead of piling up threads).
//!
//! Either way each connection speaks HTTP/1.1 with keep-alive, parsed by the
//! incremental [`RequestParser`] below, and predictions are **bit-identical**
//! across models — the model only changes how sockets are scheduled.
//!
//! # Wire protocol
//!
//! | Endpoint | Body | Response |
//! |----------|------|----------|
//! | `POST /predict` | single request object, or `{"items": [...]}` | prediction object, or `{"count": n, "predictions": [...]}` — served by the zoo's **default** model |
//! | `POST /predict/<id>` | as `POST /predict` | the same, served by the tenant registered under `<id>` (`404 unknown_model` otherwise) |
//! | `GET /model` | — | the routing table: default id plus one descriptor per tenant (arch, version, precision, side-state tags, reload counters) |
//! | `GET /model/<id>` | — | one tenant's descriptor |
//! | `POST /admin/reload/<id>` | — | atomic hot-swap of `<id>` to the current contents of its checkpoint file: `200 {"model", "version"}`, `404 unknown_model`, `400 not_reloadable`, `503 reload_failed` (+`Retry-After`) |
//! | `GET /healthz` | — | liveness: `{"status": "ok"}` whenever the process can answer at all |
//! | `GET /readyz` | — | readiness: `200` while accepting work, `503` once draining ([`HttpServer::begin_drain`]) or shut down, or with dead prediction workers (any tenant) |
//! | `GET /stats` | — | queue depth, worker/pool counters, per-endpoint request counters, a per-model object, per-stage latency quantiles and per-domain drift scores (see [`crate::telemetry`]) |
//! | `GET /metrics` | — | Prometheus text exposition (format 0.0.4, `text/plain`) of the same counters, histograms and drift gauges, plus `model`-labelled per-tenant families |
//!
//! Request and prediction objects are specified in [`crate::json`]. Every
//! error response carries `{"error": <code>, "message": <text>}`; statuses:
//!
//! * `400` — malformed request line/headers/body, invalid JSON, schema or
//!   [`dtdbd_data::RequestError`] validation failure (the validation `code`
//!   comes from [`dtdbd_data::RequestError::wire_code`]);
//! * `404` / `405` — unknown path / wrong method (with an `Allow` header);
//! * `408` — a request that did not arrive completely within
//!   `request_timeout` (slow-loris guard for the bounded pool);
//! * `413` / `431` — body over `max_body_bytes` / head over `max_head_bytes`;
//! * `503` — the request was shed; the `code` says why and every variant
//!   carries a `Retry-After` header (seconds, derived from queue depth and
//!   drain state): `overloaded` (connection pool / dispatch queue
//!   saturated, sent before closing the socket), `worker_crashed` (the
//!   prediction worker serving the request panicked mid-batch; its
//!   supervisor is respawning it) and `deadline_exceeded` (the request's
//!   `request_timeout` budget expired while it sat in the micro-batch
//!   queue).
//!
//! Responses are `application/json` (except `/metrics`, which is the
//! Prometheus `text/plain; version=0.0.4`), always carry `Content-Length`,
//! and honour HTTP/1.0-vs-1.1 keep-alive defaults plus `Connection: close`.
//!
//! Shutdown is graceful and runs on drop: intake stops, the acceptor and
//! every connection worker is joined, and the wrapped [`PredictServer`] then
//! drains its queue through its own [`PredictServer::shutdown`] sequence.

use crate::json::{self, Json};
use crate::prom::{MetricKind, PromText};
use crate::server::{PredictError, PredictServer};
use crate::session::Prediction;
use crate::telemetry::{DomainDrift, Stage};
use crate::zoo::{ModelZoo, ReloadError, Tenant, TenantModel};
use dtdbd_data::EncodedRequest;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How [`HttpServer`] schedules its connections.
///
/// | Model | Mechanism | Idle keep-alive cost |
/// |-------|-----------|----------------------|
/// | `Epoll` | one event-loop thread, readiness polling ([`crate::poll`]) | a slab slot + a timer-wheel entry |
/// | `Pool`  | thread-per-connection behind a bounded hand-off queue | a pool thread each |
///
/// **Platform defaults:** `Auto` resolves to `Epoll` on Linux
/// (x86_64/aarch64, where the raw-syscall shims exist) and to `Pool`
/// everywhere else. The environment variable `DTDBD_CONNECTION_MODEL`
/// (`"epoll"` or `"pool"`) overrides `Auto` only — an explicit choice in
/// code wins. Asking for `Epoll` on a platform without epoll support falls
/// back to `Pool` rather than failing. The resolved model is surfaced in
/// `/stats` (`http.connection_model`) and `/metrics`
/// (`dtdbd_http_connection_model`).
///
/// Predictions are bit-identical under either model; `connection_workers`
/// sizes the dispatcher pool (epoll) or the handler pool (pool), and
/// `backlog` bounds the queued work in front of it either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnectionModel {
    /// `DTDBD_CONNECTION_MODEL` if set, else the platform default
    /// (`Epoll` on supported Linux, `Pool` elsewhere).
    #[default]
    Auto,
    /// Readiness-polling event loop (falls back to `Pool` where
    /// unsupported).
    Epoll,
    /// Thread-per-connection behind the bounded accept pool.
    Pool,
}

/// Whether this build carries the epoll backend at all.
const EPOLL_SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

impl ConnectionModel {
    /// The model a server started with this setting will actually run
    /// (`"epoll"` or `"pool"`), after the environment override and the
    /// platform fallback.
    pub fn resolved(self) -> &'static str {
        let wanted = match self {
            ConnectionModel::Epoll => "epoll",
            ConnectionModel::Pool => "pool",
            ConnectionModel::Auto => match std::env::var("DTDBD_CONNECTION_MODEL").as_deref() {
                Ok("pool") => "pool",
                Ok("epoll") => "epoll",
                _ => {
                    if EPOLL_SUPPORTED {
                        "epoll"
                    } else {
                        "pool"
                    }
                }
            },
        };
        if wanted == "epoll" && !EPOLL_SUPPORTED {
            "pool"
        } else {
            wanted
        }
    }
}

/// Tuning knobs of the HTTP listener.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`HttpServer::local_addr`]).
    pub addr: String,
    /// Connection scheduling: epoll event loop vs thread-per-connection
    /// pool (see [`ConnectionModel`] for the platform defaults).
    pub connection_model: ConnectionModel,
    /// Size of the connection-handler thread pool (pool model) or of the
    /// dispatcher pool behind the event loop (epoll model).
    pub connection_workers: usize,
    /// Accepted connections (pool) / parsed requests (epoll) that may wait
    /// for a free handler before the server starts answering `503`.
    pub backlog: usize,
    /// Largest request head (request line + headers) accepted; `431` beyond.
    pub max_head_bytes: usize,
    /// Largest declared body accepted; `413` beyond.
    pub max_body_bytes: usize,
    /// Idle keep-alive deadline: a connection with no request in progress is
    /// closed after this long without bytes. Under the pool model this is
    /// also the per-read socket timeout; under epoll it is a timer-wheel
    /// deadline (granularity 10 ms, never early).
    pub read_timeout: Duration,
    /// Overall deadline for one request to arrive completely (first byte to
    /// final body byte). Guards against slow-loris clients that keep each
    /// individual read under `read_timeout`; `408` beyond. Under epoll this
    /// also bounds how long a response may sit unflushed against a stalled
    /// reader (cut without a status — there is no wire left to answer on).
    pub request_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            connection_model: ConnectionModel::Auto,
            connection_workers: 8,
            backlog: 32,
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// A wire-level failure mapped to an HTTP status + stable error code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable code (the JSON `"error"` field).
    pub code: &'static str,
    /// Human-readable detail (the JSON `"message"` field).
    pub message: String,
}

impl WireError {
    fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            status: 400,
            code,
            message: message.into(),
        }
    }
}

/// A fully parsed request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, verbatim (e.g. `"POST"`).
    pub method: String,
    /// Request target, verbatim (e.g. `"/predict?x=1"`).
    pub target: String,
    /// Headers in order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (exactly `Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// One step of incremental parsing.
#[derive(Debug)]
pub enum ParseOutcome {
    /// The buffered bytes do not yet hold a complete request.
    NeedMore,
    /// A complete request was parsed (and consumed from the buffer).
    Request(Box<HttpRequest>),
    /// The byte stream is not a parseable request; answer with the error and
    /// close the connection.
    Failed(WireError),
}

/// Incremental HTTP/1.1 request parser.
///
/// Feed it bytes as they arrive ([`RequestParser::feed`]) and poll it for
/// requests ([`RequestParser::poll`]); it consumes exactly one request's
/// bytes per `Request` outcome, so pipelined requests buffered together are
/// handed out one at a time. The parser never panics on any byte sequence —
/// the wire fuzz battery holds it to that.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    max_head_bytes: usize,
    max_body_bytes: usize,
}

const HEAD_END: &[u8] = b"\r\n\r\n";

impl RequestParser {
    /// A parser enforcing the given head/body limits.
    pub fn new(max_head_bytes: usize, max_body_bytes: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_head_bytes,
            max_body_bytes,
        }
    }

    /// Buffer freshly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (parsed requests are consumed).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffered bytes contain a complete request head
    /// (`\r\n\r\n` seen). Read-only — the event loop uses it to move a
    /// connection from reading-head to reading-body without consuming
    /// anything.
    pub fn head_complete(&self) -> bool {
        find_subsequence(&self.buf, HEAD_END).is_some()
    }

    /// Try to parse one complete request out of the buffered bytes.
    pub fn poll(&mut self) -> ParseOutcome {
        let head_len = match find_subsequence(&self.buf, HEAD_END) {
            Some(i) => i,
            None => {
                if self.buf.len() > self.max_head_bytes {
                    return ParseOutcome::Failed(WireError {
                        status: 431,
                        code: "headers_too_large",
                        message: format!("request head exceeds {} bytes", self.max_head_bytes),
                    });
                }
                return ParseOutcome::NeedMore;
            }
        };
        if head_len > self.max_head_bytes {
            return ParseOutcome::Failed(WireError {
                status: 431,
                code: "headers_too_large",
                message: format!("request head exceeds {} bytes", self.max_head_bytes),
            });
        }
        let (method, target, version, headers) = match parse_head(&self.buf[..head_len]) {
            Ok(parts) => parts,
            Err(e) => return ParseOutcome::Failed(e),
        };
        let content_length = match content_length(&headers) {
            Ok(len) => len,
            Err(e) => return ParseOutcome::Failed(e),
        };
        if content_length > self.max_body_bytes as u64 {
            return ParseOutcome::Failed(WireError {
                status: 413,
                code: "body_too_large",
                message: format!(
                    "declared body of {content_length} bytes exceeds {}",
                    self.max_body_bytes
                ),
            });
        }
        let body_start = head_len + HEAD_END.len();
        // The limit check above ran on the raw u64, so the cast below cannot
        // truncate a hostile near-u64::MAX length on 32-bit targets unless
        // the limit itself is usize::MAX — and then the checked add still
        // refuses to wrap the buffer arithmetic.
        let total = match body_start.checked_add(content_length as usize) {
            Some(total) => total,
            None => {
                return ParseOutcome::Failed(WireError {
                    status: 413,
                    code: "body_too_large",
                    message: format!(
                        "declared body of {content_length} bytes overflows the buffer"
                    ),
                })
            }
        };
        if self.buf.len() < total {
            return ParseOutcome::NeedMore;
        }
        let body = self.buf[body_start..total].to_vec();
        self.buf.drain(..total);
        let keep_alive = keep_alive(version, &headers);
        ParseOutcome::Request(Box::new(HttpRequest {
            method,
            target,
            headers,
            body,
            keep_alive,
        }))
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    Http10,
    Http11,
}

type Head = (String, String, Version, Vec<(String, String)>);

fn parse_head(head: &[u8]) -> Result<Head, WireError> {
    // The head must be ASCII: printable characters plus tab, with CRLF line
    // separators. Reject anything else before string processing.
    if head
        .iter()
        .any(|&b| !(b == b'\r' || b == b'\n' || b == b'\t' || (0x20..0x7F).contains(&b)))
    {
        return Err(WireError::bad_request(
            "bad_head",
            "request head contains non-ASCII or control bytes",
        ));
    }
    let head = std::str::from_utf8(head).expect("checked ASCII above");
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let (method, target, version) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        headers.push(parse_header_line(line)?);
    }
    Ok((method, target, version, headers))
}

fn parse_request_line(line: &str) -> Result<(String, String, Version), WireError> {
    let mut parts = line.split(' ');
    let (method, target, version_text) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => {
            return Err(WireError::bad_request(
                "bad_request_line",
                format!("malformed request line {line:?}"),
            ))
        }
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(WireError::bad_request(
            "bad_request_line",
            format!("invalid method {method:?}"),
        ));
    }
    if !target.starts_with('/') {
        return Err(WireError::bad_request(
            "bad_request_line",
            format!("request target {target:?} must start with '/'"),
        ));
    }
    let version = match version_text {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        other => {
            return Err(WireError::bad_request(
                "unsupported_version",
                format!("unsupported protocol version {other:?}"),
            ))
        }
    };
    Ok((method.to_string(), target.to_string(), version))
}

fn parse_header_line(line: &str) -> Result<(String, String), WireError> {
    let (name, value) = line.split_once(':').ok_or_else(|| {
        WireError::bad_request("bad_header", format!("header line {line:?} has no ':'"))
    })?;
    let is_token_char = |b: u8| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b);
    if name.is_empty() || !name.bytes().all(is_token_char) {
        return Err(WireError::bad_request(
            "bad_header",
            format!("invalid header name {name:?}"),
        ));
    }
    Ok((name.to_ascii_lowercase(), value.trim().to_string()))
}

fn content_length(headers: &[(String, String)]) -> Result<u64, WireError> {
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(WireError::bad_request(
            "unsupported_transfer_encoding",
            "Transfer-Encoding is not supported; send a Content-Length body",
        ));
    }
    let mut length: Option<u64> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        let parsed: u64 = value
            .parse()
            .ok()
            .filter(|_| !value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()))
            .ok_or_else(|| {
                WireError::bad_request(
                    "bad_content_length",
                    format!("unparseable Content-Length {value:?}"),
                )
            })?;
        match length {
            Some(existing) if existing != parsed => {
                return Err(WireError::bad_request(
                    "bad_content_length",
                    "conflicting Content-Length headers",
                ))
            }
            _ => length = Some(parsed),
        }
    }
    Ok(length.unwrap_or(0))
}

fn keep_alive(version: Version, headers: &[(String, String)]) -> bool {
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let has_token = |token: &str| {
        connection
            .as_deref()
            .is_some_and(|v| v.split(',').any(|t| t.trim() == token))
    };
    match version {
        Version::Http11 => !has_token("close"),
        Version::Http10 => has_token("keep-alive"),
    }
}

/// Per-endpoint and per-connection counters surfaced by `GET /stats`.
#[derive(Debug, Default)]
pub struct HttpStats {
    pub(crate) connections: AtomicU64,
    pub(crate) connections_rejected: AtomicU64,
    /// Connections currently open (accepted and not yet closed).
    pub(crate) open_connections: AtomicU64,
    /// Requests cut at `request_timeout` (slow-loris guard; answered `408`
    /// while a wire exists, silent close for a stalled response reader).
    pub(crate) request_timeouts: AtomicU64,
    /// Idle keep-alive connections closed at `read_timeout`.
    pub(crate) idle_timeouts: AtomicU64,
    /// Entries resident in the event loop's timer wheel (a small
    /// overestimate of live deadlines — lazily cancelled entries linger
    /// until their tick passes; 0 under the pool model).
    pub(crate) timers_armed: AtomicU64,
    predict_calls: AtomicU64,
    items_predicted: AtomicU64,
    healthz_calls: AtomicU64,
    readyz_calls: AtomicU64,
    stats_calls: AtomicU64,
    metrics_calls: AtomicU64,
    model_calls: AtomicU64,
    reload_calls: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
}

impl HttpStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_response(&self, status: u16) {
        match status {
            200..=299 => Self::bump(&self.responses_2xx),
            400..=499 => Self::bump(&self.responses_4xx),
            _ => Self::bump(&self.responses_5xx),
        }
    }

    fn render(&self, ctx: &Ctx) -> Json {
        // Top-level counters keep their single-model shape by reporting the
        // default tenant; the `models` object below carries every tenant.
        let predict = ctx.zoo.default_model();
        let serving = predict.stats();
        let num = |v: u64| Json::Num(v as f64);
        let mut fields = vec![
            ("ready".to_string(), Json::Bool(is_ready(ctx))),
            ("queue_depth".into(), num(serving.queue_depth as u64)),
            ("requests_served".into(), num(serving.requests_served)),
            ("batches".into(), num(serving.batches)),
            ("workers".into(), num(serving.workers as u64)),
            ("workers_alive".into(), num(predict.workers_alive() as u64)),
            ("threads".into(), num(serving.threads as u64)),
            (
                "precision".into(),
                Json::Str(serving.precision.name().to_string()),
            ),
            (
                "pool".into(),
                Json::Obj(vec![
                    ("reuse_hits".into(), num(serving.pool_reuse_hits)),
                    ("alloc_misses".into(), num(serving.pool_alloc_misses)),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), num(serving.cache.hits)),
                    ("misses".into(), num(serving.cache.misses)),
                    ("evictions".into(), num(serving.cache.evictions)),
                    ("entries".into(), num(serving.cache.entries as u64)),
                    ("capacity".into(), num(serving.cache.capacity as u64)),
                ]),
            ),
            (
                "sharding".into(),
                Json::Obj(vec![
                    (
                        "embedding_shards".into(),
                        num(serving.embedding_shards as u64),
                    ),
                    // Process-wide: tenants sharing a byte-identical frozen
                    // table contribute its pool bytes once, not per tenant.
                    (
                        "shard_pool_bytes".into(),
                        num(ctx.zoo.shard_pool_bytes_deduped()),
                    ),
                    (
                        "resident_param_bytes_per_worker".into(),
                        num(serving.resident_param_bytes_per_worker),
                    ),
                    (
                        "quantized_param_bytes_per_worker".into(),
                        num(serving.quantized_param_bytes_per_worker),
                    ),
                ]),
            ),
            (
                "routing".into(),
                Json::Obj(vec![
                    (
                        "specialist_queues".into(),
                        num(serving.routing.specialist_queues as u64),
                    ),
                    (
                        "routed_specialist".into(),
                        num(serving.routing.routed_specialist),
                    ),
                    ("routed_shared".into(), num(serving.routing.routed_shared)),
                ]),
            ),
            (
                "supervision".into(),
                Json::Obj(vec![
                    ("worker_panics".into(), num(serving.worker_panics)),
                    ("worker_restarts".into(), num(serving.worker_restarts)),
                    (
                        "requests_deadline_dropped".into(),
                        num(serving.requests_deadline_dropped),
                    ),
                ]),
            ),
            (
                "models".into(),
                Json::Obj(
                    ctx.zoo
                        .tenants()
                        .iter()
                        .map(|tenant| {
                            let model = tenant.model();
                            let stats = model.stats();
                            (
                                tenant.id().to_string(),
                                Json::Obj(vec![
                                    ("version".into(), num(model.version())),
                                    ("reloads".into(), num(tenant.reloads())),
                                    (
                                        "requests_served_total".into(),
                                        num(tenant.requests_served_total()),
                                    ),
                                    ("requests_served_active".into(), num(stats.requests_served)),
                                    ("queue_depth".into(), num(stats.queue_depth as u64)),
                                    ("workers".into(), num(stats.workers as u64)),
                                    ("workers_alive".into(), num(model.workers_alive() as u64)),
                                    ("arch".into(), Json::Str(model.arch().to_string())),
                                    (
                                        "precision".into(),
                                        Json::Str(stats.precision.name().to_string()),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "endpoints".into(),
                Json::Obj(vec![
                    (
                        "predict".into(),
                        num(self.predict_calls.load(Ordering::Relaxed)),
                    ),
                    (
                        "healthz".into(),
                        num(self.healthz_calls.load(Ordering::Relaxed)),
                    ),
                    (
                        "readyz".into(),
                        num(self.readyz_calls.load(Ordering::Relaxed)),
                    ),
                    (
                        "stats".into(),
                        num(self.stats_calls.load(Ordering::Relaxed)),
                    ),
                    (
                        "metrics".into(),
                        num(self.metrics_calls.load(Ordering::Relaxed)),
                    ),
                    (
                        "model".into(),
                        num(self.model_calls.load(Ordering::Relaxed)),
                    ),
                    (
                        "reload".into(),
                        num(self.reload_calls.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "http".into(),
                Json::Obj(vec![
                    (
                        "connection_model".into(),
                        Json::Str(ctx.connection_model.to_string()),
                    ),
                    (
                        "connections".into(),
                        num(self.connections.load(Ordering::Relaxed)),
                    ),
                    (
                        "connections_rejected".into(),
                        num(self.connections_rejected.load(Ordering::Relaxed)),
                    ),
                    (
                        "open_connections".into(),
                        num(self.open_connections.load(Ordering::Relaxed)),
                    ),
                    (
                        "request_timeouts".into(),
                        num(self.request_timeouts.load(Ordering::Relaxed)),
                    ),
                    (
                        "idle_timeouts".into(),
                        num(self.idle_timeouts.load(Ordering::Relaxed)),
                    ),
                    (
                        "timer_wheel_armed".into(),
                        num(self.timers_armed.load(Ordering::Relaxed)),
                    ),
                    (
                        "items_predicted".into(),
                        num(self.items_predicted.load(Ordering::Relaxed)),
                    ),
                    (
                        "responses_2xx".into(),
                        num(self.responses_2xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "responses_4xx".into(),
                        num(self.responses_4xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "responses_5xx".into(),
                        num(self.responses_5xx.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
        ];
        if let Some(telemetry) = predict.telemetry() {
            let snap = telemetry.snapshot();
            let stages = Stage::ALL
                .iter()
                .map(|&stage| {
                    let total = snap.stage_total(stage);
                    let us = |ns: f64| Json::Num(ns / 1_000.0);
                    (
                        stage.name().to_string(),
                        Json::Obj(vec![
                            ("count".into(), num(total.count)),
                            ("mean_us".into(), us(total.mean_ns())),
                            ("p50_us".into(), us(total.quantile_ns(0.5))),
                            ("p90_us".into(), us(total.quantile_ns(0.9))),
                            ("p99_us".into(), us(total.quantile_ns(0.99))),
                        ]),
                    )
                })
                .collect();
            fields.push(("stages".into(), Json::Obj(stages)));
            fields.push((
                "drift".into(),
                Json::Arr(snap.drift.iter().map(drift_json).collect()),
            ));
            fields.push((
                "predictions_non_finite".into(),
                num(snap.predictions_non_finite),
            ));
        }
        Json::Obj(fields)
    }
}

fn drift_json(d: &DomainDrift) -> Json {
    let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    Json::Obj(vec![
        ("domain".into(), Json::Num(d.domain as f64)),
        ("live_count".into(), Json::Num(d.live_count as f64)),
        ("live_mean".into(), opt(d.live_mean)),
        ("baseline_count".into(), Json::Num(d.baseline_count as f64)),
        ("baseline_mean".into(), opt(d.baseline_mean)),
        ("mean_shift".into(), opt(d.mean_shift)),
        ("score".into(), opt(d.score)),
    ])
}

pub(crate) struct Ctx {
    pub(crate) zoo: Arc<ModelZoo>,
    pub(crate) stats: HttpStats,
    pub(crate) config: HttpConfig,
    /// The model this server resolved to (`"epoll"` or `"pool"`).
    pub(crate) connection_model: &'static str,
    // Shared with the acceptor AND the connection workers: a busy
    // keep-alive connection checks it between requests so shutdown is
    // never blocked behind a client that keeps the wire warm.
    pub(crate) shutdown: AtomicBool,
    // Readiness only (`GET /readyz` answers 503): requests in flight still
    // complete, the listener stays up, `/healthz` keeps saying ok. Lets a
    // load balancer stop routing here before the hard shutdown starts.
    // The epoll loop additionally drops its accept interest and both
    // backends release keep-alive clients (`Connection: close` on the next
    // response, shortened idle deadlines).
    pub(crate) draining: AtomicBool,
}

impl Ctx {
    /// Snapshot of the zoo's default tenant — what the single-model
    /// surfaces (bare `/predict`, top-level `/stats`, the connection-level
    /// telemetry recorder) resolve to.
    pub(crate) fn default_model(&self) -> Arc<TenantModel> {
        self.zoo.default_model()
    }

    /// True once either [`HttpServer::begin_drain`] or shutdown flipped:
    /// capacity is not coming back on this listener.
    pub(crate) fn draining_or_shutdown(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || self.shutdown.load(Ordering::SeqCst)
    }

    /// `Retry-After` seconds for a 503 shed against `model`'s queue.
    pub(crate) fn retry_after(&self, model: &PredictServer) -> u64 {
        retry_after_secs(model.queue_depth(), self.draining_or_shutdown())
    }
}

/// Readiness as `GET /readyz` reports it: not draining, not shut down, and
/// every prediction worker of **every** tenant still alive.
fn is_ready(ctx: &Ctx) -> bool {
    if ctx.draining_or_shutdown() {
        return false;
    }
    let (alive, configured) = ctx.zoo.workers_health();
    alive == configured
}

/// The HTTP listener wrapping a [`PredictServer`].
pub struct HttpServer {
    ctx: Arc<Ctx>,
    local_addr: SocketAddr,
    backend: Backend,
}

/// The running connection backend's thread handles.
enum Backend {
    Pool {
        acceptor: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
    },
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Epoll(crate::poll::EpollBackend),
}

impl HttpServer {
    /// Bind `config.addr` and start serving `predict` over HTTP, under the
    /// connection model `config.connection_model` resolves to. The server
    /// runs as a single-tenant [`ModelZoo`] under
    /// [`crate::zoo::DEFAULT_MODEL_ID`], so the whole multi-model surface
    /// (`/predict/<id>`, `/model`, per-model stats) answers consistently.
    pub fn start(predict: PredictServer, config: HttpConfig) -> io::Result<Self> {
        Self::start_zoo(ModelZoo::single(predict), config)
    }

    /// Bind `config.addr` and serve a multi-tenant [`ModelZoo`]:
    /// `POST /predict/<id>` routes per tenant, bare `POST /predict` serves
    /// the zoo's default id, and `POST /admin/reload/<id>` hot-swaps
    /// file-backed tenants without dropping traffic.
    pub fn start_zoo(zoo: ModelZoo, config: HttpConfig) -> io::Result<Self> {
        assert!(config.connection_workers > 0, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let connection_model = config.connection_model.resolved();
        let ctx = Arc::new(Ctx {
            zoo: Arc::new(zoo),
            stats: HttpStats::default(),
            config,
            connection_model,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
        });
        let backend = match connection_model {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            "epoll" => Backend::Epoll(crate::poll::start(listener, Arc::clone(&ctx))?),
            _ => Self::start_pool(listener, &ctx),
        };
        Ok(Self {
            ctx,
            local_addr,
            backend,
        })
    }

    fn start_pool(listener: TcpListener, ctx: &Arc<Ctx>) -> Backend {
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(ctx.config.backlog);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..ctx.config.connection_workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(ctx);
                thread::spawn(move || loop {
                    // Hold the lock only to pull the next connection.
                    let stream = match rx.lock().expect("hand-off poisoned").recv() {
                        Ok(stream) => stream,
                        Err(_) => return, // acceptor gone and queue drained
                    };
                    ctx.stats.open_connections.fetch_add(1, Ordering::Relaxed);
                    handle_connection(stream, &ctx);
                    ctx.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
                })
            })
            .collect();

        let acceptor = {
            let ctx = Arc::clone(ctx);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if ctx.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match stream {
                        Ok(stream) => stream,
                        Err(_) => continue,
                    };
                    HttpStats::bump(&ctx.stats.connections);
                    // Bounded pool saturated (or every worker dead): shed
                    // load with a 503 instead of spawning unbounded threads
                    // or silently dropping the socket.
                    if let Err(
                        TrySendError::Full(mut stream) | TrySendError::Disconnected(mut stream),
                    ) = tx.try_send(stream)
                    {
                        HttpStats::bump(&ctx.stats.connections_rejected);
                        ctx.stats.count_response(503);
                        let body = error_body("overloaded", "connection pool saturated");
                        let retry = [(
                            "Retry-After",
                            ctx.retry_after(&ctx.default_model()).to_string(),
                        )];
                        let _ = write_response(
                            &mut stream,
                            503,
                            &body,
                            CONTENT_TYPE_JSON,
                            false,
                            &retry,
                        );
                    }
                }
                // Dropping `tx` here releases the workers' recv loops.
            })
        };

        Backend::Pool {
            acceptor: Some(acceptor),
            workers,
        }
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the default tenant's active model (e.g. to compare
    /// in-process answers against wire answers in tests). The handle derefs
    /// to its [`PredictServer`] and pins the version it snapshotted — a
    /// hot-swap racing this call never swaps the model out from under it.
    pub fn predict_server(&self) -> Arc<TenantModel> {
        self.ctx.zoo.default_model()
    }

    /// The zoo behind this listener (tenant lookup, programmatic reloads).
    pub fn zoo(&self) -> &Arc<ModelZoo> {
        &self.ctx.zoo
    }

    /// The connection model actually serving this listener (`"epoll"` or
    /// `"pool"`), after `Auto` resolution and platform fallback.
    pub fn connection_model(&self) -> &'static str {
        self.ctx.connection_model
    }

    /// Stop accepting, join the acceptor and every connection worker, then
    /// drain the wrapped [`PredictServer`] (its [`PredictServer::shutdown`]
    /// runs when the last reference drops here). Dropping the listener calls
    /// this too. Open keep-alive connections are released at their next
    /// request boundary (busy clients get `Connection: close`) or within one
    /// `read_timeout` (idle clients), so the join is bounded even under
    /// sustained client traffic.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Flip `GET /readyz` to `503`: in-flight and new requests on open
    /// connections still complete and `/healthz` still answers ok, but a
    /// load balancer polling readiness stops sending traffic here. Under
    /// the epoll model the event loop additionally drops its **accept
    /// interest** — open state machines run to completion while no new
    /// connections are admitted. Call it ahead of [`HttpServer::shutdown`]
    /// to drain cleanly.
    pub fn begin_drain(&self) {
        self.ctx.draining.store(true, Ordering::SeqCst);
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Backend::Epoll(backend) = &self.backend {
            backend.waker.wake(); // let the loop observe the flag now
        }
    }

    fn shutdown_impl(&mut self) {
        self.ctx.draining.store(true, Ordering::SeqCst);
        if self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        match &mut self.backend {
            Backend::Pool { acceptor, workers } => {
                // The acceptor blocks in accept(); a no-op connection wakes
                // it so it can observe the flag.
                let _ = TcpStream::connect(self.local_addr);
                if let Some(acceptor) = acceptor.take() {
                    let _ = acceptor.join();
                }
                for worker in workers.drain(..) {
                    let _ = worker.join();
                }
            }
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(backend) => {
                backend.waker.wake();
                // The loop closes idle connections, finishes in-flight
                // requests (responses carry `Connection: close`) and exits;
                // dropping its dispatch channel then releases the
                // dispatchers.
                if let Some(event_loop) = backend.event_loop.take() {
                    let _ = event_loop.join();
                }
                for dispatcher in backend.dispatchers.drain(..) {
                    let _ = dispatcher.join();
                }
            }
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_impl();
        // After the handler threads are gone, `self.ctx` is (usually) the
        // last reference: dropping it drains and joins the PredictServer.
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    // Each blocking read is capped at a short poll interval rather than the
    // full `read_timeout`, so a thread parked on an idle keep-alive socket
    // observes drain/shutdown within one tick instead of one read_timeout.
    // The idle deadline itself is tracked explicitly against `idle_since`.
    let poll_cap = ctx.config.read_timeout.min(READ_POLL_INTERVAL);
    let _ = stream.set_read_timeout(Some(poll_cap));
    let _ = stream.set_nodelay(true);
    let trace = ctx.default_model().trace();
    let mut parser = RequestParser::new(ctx.config.max_head_bytes, ctx.config.max_body_bytes);
    let mut chunk = [0u8; 8192];
    // Overall per-request deadline, armed from the first buffered byte of
    // each request. The per-read timeout alone would let a slow-loris
    // client trickle one byte per read forever, pinning a pool worker.
    let mut request_started: Option<Instant> = None;
    // Telemetry only: from the first socket read of a request to its
    // complete parse (so it includes the client's own trickle time; a
    // pipelined request parsed straight out of the buffer records nothing).
    let mut parse_started: Option<Instant> = None;
    let mut idle_since = Instant::now();
    loop {
        match parser.poll() {
            ParseOutcome::Request(request) => {
                if let Some(t0) = parse_started.take() {
                    trace.record_ns(Stage::HttpParse, t0.elapsed().as_nanos() as u64);
                }
                request_started = None;
                let (status, body, content_type, extra) = route(&request, ctx);
                ctx.stats.count_response(status);
                // During drain or shutdown the response still goes out, but
                // with `Connection: close` so a busy keep-alive client
                // cannot hold this worker (and the shutdown join) hostage
                // or keep hammering a drained listener.
                let keep = request.keep_alive && !ctx.draining_or_shutdown();
                let write_started = trace.is_enabled().then(Instant::now);
                let wrote =
                    write_response(&mut stream, status, &body, content_type, keep, &extra).is_ok();
                if let Some(t0) = write_started {
                    trace.record_ns(Stage::ResponseWrite, t0.elapsed().as_nanos() as u64);
                }
                if !wrote || !keep {
                    return;
                }
                idle_since = Instant::now();
            }
            ParseOutcome::Failed(e) => {
                ctx.stats.count_response(e.status);
                let body = error_body(e.code, &e.message);
                let _ = write_response(&mut stream, e.status, &body, CONTENT_TYPE_JSON, false, &[]);
                return;
            }
            ParseOutcome::NeedMore => {
                // Between requests, an idle connection is released as soon
                // as shutdown starts; while draining it gets the shortened
                // drain deadline instead of the full read_timeout (a fresh
                // request racing the drain flag still gets its answer).
                if parser.buffered() == 0 {
                    if ctx.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let idle_deadline = if ctx.draining.load(Ordering::SeqCst) {
                        DRAIN_IDLE_DEADLINE.min(ctx.config.read_timeout)
                    } else {
                        ctx.config.read_timeout
                    };
                    if idle_since.elapsed() >= idle_deadline {
                        HttpStats::bump(&ctx.stats.idle_timeouts);
                        return;
                    }
                } else {
                    let started = *request_started.get_or_insert_with(Instant::now);
                    if started.elapsed() > ctx.config.request_timeout {
                        HttpStats::bump(&ctx.stats.request_timeouts);
                        ctx.stats.count_response(408);
                        let body = error_body("request_timeout", "request took too long to arrive");
                        let _ =
                            write_response(&mut stream, 408, &body, CONTENT_TYPE_JSON, false, &[]);
                        return;
                    }
                }
                match stream.read(&mut chunk) {
                    Ok(0) => return, // peer closed
                    Ok(n) => {
                        if parse_started.is_none() && trace.is_enabled() {
                            parse_started = Some(Instant::now());
                        }
                        parser.feed(&chunk[..n]);
                        idle_since = Instant::now();
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        // Poll tick: loop around to re-check the deadlines
                        // and the drain/shutdown flags.
                    }
                    Err(_) => return, // reset: close quietly
                }
            }
        }
    }
}

pub(crate) const CONTENT_TYPE_JSON: &str = "application/json";
const CONTENT_TYPE_PROM: &str = "text/plain; version=0.0.4";

/// Cap on a pool thread's blocking socket read, so drain/shutdown flags are
/// observed within one tick even on a completely idle keep-alive socket.
const READ_POLL_INTERVAL: Duration = Duration::from_millis(100);

/// While draining, idle keep-alive connections are released after this much
/// quiet time instead of the full `read_timeout` — both backends use it (the
/// epoll loop re-arms its timer-wheel idle deadlines to this on the drain
/// transition).
pub(crate) const DRAIN_IDLE_DEADLINE: Duration = Duration::from_millis(100);

pub(crate) type Routed = (u16, String, &'static str, Vec<(&'static str, String)>);

/// How long a shed client should wait before retrying, in seconds — the
/// **one** function behind every `Retry-After` header this server emits
/// (accept shed, dispatch shed, predict-path 503s, failed reloads): 5 while
/// `draining` (drain or shutdown — capacity is not coming back here),
/// otherwise scaled with the shed queue's depth — an extra second per 64
/// queued requests, clamped to 1..=30.
pub(crate) fn retry_after_secs(queue_depth: usize, draining: bool) -> u64 {
    if draining {
        return 5;
    }
    (1 + queue_depth as u64 / 64).clamp(1, 30)
}

/// Serve one predict request against `tenant`'s active model. The snapshot
/// is taken once and pins the version for the whole request: a hot-swap
/// flipping this tenant mid-request never changes the model it runs on.
fn predict_route(request: &HttpRequest, ctx: &Ctx, tenant: &Tenant) -> Routed {
    HttpStats::bump(&ctx.stats.predict_calls);
    let model = tenant.model();
    match handle_predict(&request.body, ctx, &model) {
        Ok(body) => (200, body, CONTENT_TYPE_JSON, Vec::new()),
        Err(e) => {
            // Every 503 shed tells the client when to retry.
            let headers = if e.status == 503 {
                vec![("Retry-After", ctx.retry_after(&model).to_string())]
            } else {
                Vec::new()
            };
            (
                e.status,
                error_body(e.code, &e.message),
                CONTENT_TYPE_JSON,
                headers,
            )
        }
    }
}

/// The descriptor `GET /model` / `GET /model/<id>` reports for one tenant.
fn model_descriptor(tenant: &Tenant, ctx: &Ctx) -> Json {
    let model = tenant.model();
    let stats = model.stats();
    Json::Obj(vec![
        ("model".into(), Json::Str(tenant.id().to_string())),
        ("arch".into(), Json::Str(model.arch().to_string())),
        ("version".into(), Json::Num(model.version() as f64)),
        (
            "precision".into(),
            Json::Str(stats.precision.name().to_string()),
        ),
        (
            "default".into(),
            Json::Bool(tenant.id() == ctx.zoo.default_id()),
        ),
        ("reloadable".into(), Json::Bool(tenant.reloadable())),
        ("reloads".into(), Json::Num(tenant.reloads() as f64)),
        (
            "side_state".into(),
            Json::Arr(
                model
                    .side_state_tags()
                    .iter()
                    .map(|tag| Json::Str(tag.clone()))
                    .collect(),
            ),
        ),
        ("workers".into(), Json::Num(stats.workers as f64)),
        (
            "requests_served_total".into(),
            Json::Num(tenant.requests_served_total() as f64),
        ),
    ])
}

fn unknown_model(id: &str) -> Routed {
    (
        404,
        error_body(
            "unknown_model",
            &format!("no model registered under id {id:?}"),
        ),
        CONTENT_TYPE_JSON,
        Vec::new(),
    )
}

fn method_not_allowed(allow: &'static str, hint: &str) -> Routed {
    (
        405,
        error_body("method_not_allowed", hint),
        CONTENT_TYPE_JSON,
        vec![("Allow", allow.to_string())],
    )
}

fn reload_route(id: &str, ctx: &Ctx) -> Routed {
    HttpStats::bump(&ctx.stats.reload_calls);
    match ctx.zoo.reload(id) {
        Ok(version) => (
            200,
            Json::Obj(vec![
                ("model".into(), Json::Str(id.to_string())),
                ("version".into(), Json::Num(version as f64)),
            ])
            .render(),
            CONTENT_TYPE_JSON,
            Vec::new(),
        ),
        Err(e) => {
            let (status, code) = match &e {
                ReloadError::UnknownModel(_) => (404, "unknown_model"),
                ReloadError::NotReloadable(_) => (400, "not_reloadable"),
                ReloadError::Failed(_) => (503, "reload_failed"),
            };
            // A failed reload is retryable (the checkpoint on disk may have
            // been mid-write): like every other 503 it carries Retry-After.
            let headers = if status == 503 {
                vec![(
                    "Retry-After",
                    ctx.retry_after(&ctx.default_model()).to_string(),
                )]
            } else {
                Vec::new()
            };
            (
                status,
                error_body(code, &e.to_string()),
                CONTENT_TYPE_JSON,
                headers,
            )
        }
    }
}

pub(crate) fn route(request: &HttpRequest, ctx: &Ctx) -> Routed {
    let method = request.method.as_str();
    let path = request.path();
    // Parameterised endpoints first; fixed paths fall through to the match.
    if let Some(id) = path.strip_prefix("/predict/") {
        return match method {
            "POST" => match ctx.zoo.tenant(id) {
                Some(tenant) => predict_route(request, ctx, tenant),
                None => unknown_model(id),
            },
            _ => method_not_allowed("POST", &format!("use POST /predict/{id}")),
        };
    }
    if let Some(id) = path.strip_prefix("/model/") {
        return match method {
            "GET" => match ctx.zoo.tenant(id) {
                Some(tenant) => {
                    HttpStats::bump(&ctx.stats.model_calls);
                    (
                        200,
                        model_descriptor(tenant, ctx).render(),
                        CONTENT_TYPE_JSON,
                        Vec::new(),
                    )
                }
                None => unknown_model(id),
            },
            _ => method_not_allowed("GET", &format!("use GET /model/{id}")),
        };
    }
    if let Some(id) = path.strip_prefix("/admin/reload/") {
        return match method {
            "POST" => reload_route(id, ctx),
            _ => method_not_allowed("POST", &format!("use POST /admin/reload/{id}")),
        };
    }
    match (method, path) {
        ("POST", "/predict") => predict_route(request, ctx, ctx.zoo.default_tenant()),
        ("GET", "/model") => {
            HttpStats::bump(&ctx.stats.model_calls);
            let body = Json::Obj(vec![
                (
                    "default".into(),
                    Json::Str(ctx.zoo.default_id().to_string()),
                ),
                (
                    "models".into(),
                    Json::Arr(
                        ctx.zoo
                            .tenants()
                            .iter()
                            .map(|tenant| model_descriptor(tenant, ctx))
                            .collect(),
                    ),
                ),
            ])
            .render();
            (200, body, CONTENT_TYPE_JSON, Vec::new())
        }
        (_, "/model") => method_not_allowed("GET", "use GET /model"),
        ("GET", "/healthz") => {
            HttpStats::bump(&ctx.stats.healthz_calls);
            (
                200,
                Json::Obj(vec![("status".into(), Json::Str("ok".into()))]).render(),
                CONTENT_TYPE_JSON,
                Vec::new(),
            )
        }
        ("GET", "/readyz") => {
            HttpStats::bump(&ctx.stats.readyz_calls);
            let ready = is_ready(ctx);
            let num = |v: u64| Json::Num(v as f64);
            let (alive, configured) = ctx.zoo.workers_health();
            let queue_depth: usize = ctx
                .zoo
                .tenants()
                .iter()
                .map(|t| t.model().queue_depth())
                .sum();
            let body = Json::Obj(vec![
                ("ready".into(), Json::Bool(ready)),
                (
                    "draining".into(),
                    Json::Bool(ctx.draining.load(Ordering::SeqCst)),
                ),
                ("queue_depth".into(), num(queue_depth as u64)),
                ("workers_alive".into(), num(alive as u64)),
                ("workers".into(), num(configured as u64)),
            ])
            .render();
            (
                if ready { 200 } else { 503 },
                body,
                CONTENT_TYPE_JSON,
                Vec::new(),
            )
        }
        ("GET", "/stats") => {
            HttpStats::bump(&ctx.stats.stats_calls);
            (
                200,
                ctx.stats.render(ctx).render(),
                CONTENT_TYPE_JSON,
                Vec::new(),
            )
        }
        ("GET", "/metrics") => {
            HttpStats::bump(&ctx.stats.metrics_calls);
            (200, render_metrics(ctx), CONTENT_TYPE_PROM, Vec::new())
        }
        (_, "/predict") => (
            405,
            error_body("method_not_allowed", "use POST /predict"),
            CONTENT_TYPE_JSON,
            vec![("Allow", "POST".to_string())],
        ),
        (_, path @ ("/healthz" | "/readyz" | "/stats" | "/metrics")) => (
            405,
            error_body("method_not_allowed", &format!("use GET {path}")),
            CONTENT_TYPE_JSON,
            vec![("Allow", "GET".to_string())],
        ),
        (_, path) => (
            404,
            error_body("not_found", &format!("no such endpoint {path:?}")),
            CONTENT_TYPE_JSON,
            Vec::new(),
        ),
    }
}

/// The `GET /metrics` page: every serving counter, stage/kernel latency
/// histogram and per-domain drift score in Prometheus text exposition
/// format 0.0.4 (held to [`crate::prom::lint`] by the wire tests).
fn render_metrics(ctx: &Ctx) -> String {
    // Unlabelled families keep their single-model meaning by reporting the
    // default tenant; the `dtdbd_model_*` families below carry every tenant.
    let default_model = ctx.zoo.default_model();
    let serving = default_model.stats();
    let http = &ctx.stats;
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64;
    let mut page = PromText::new();

    page.family(
        "dtdbd_http_connections_total",
        MetricKind::Counter,
        "TCP connections accepted by the listener.",
    );
    page.sample("dtdbd_http_connections_total", &[], load(&http.connections));
    page.family(
        "dtdbd_http_connections_rejected_total",
        MetricKind::Counter,
        "Connections shed with 503 because the handler pool was saturated.",
    );
    page.sample(
        "dtdbd_http_connections_rejected_total",
        &[],
        load(&http.connections_rejected),
    );
    page.family(
        "dtdbd_http_open_connections",
        MetricKind::Gauge,
        "Connections currently open (accepted and not yet closed).",
    );
    page.sample(
        "dtdbd_http_open_connections",
        &[],
        load(&http.open_connections),
    );
    page.family(
        "dtdbd_http_connection_model",
        MetricKind::Gauge,
        "1 for the connection model serving this listener (epoll or pool).",
    );
    page.sample(
        "dtdbd_http_connection_model",
        &[("model", ctx.connection_model)],
        1.0,
    );
    page.family(
        "dtdbd_http_timeouts_total",
        MetricKind::Counter,
        "Connections cut by a deadline: kind=request is the slow-loris \
         request_timeout (408), kind=idle the keep-alive read_timeout.",
    );
    for (kind, counter) in [
        ("request", &http.request_timeouts),
        ("idle", &http.idle_timeouts),
    ] {
        page.sample(
            "dtdbd_http_timeouts_total",
            &[("kind", kind)],
            load(counter),
        );
    }
    page.family(
        "dtdbd_http_timer_wheel_armed",
        MetricKind::Gauge,
        "Entries resident in the event loop's timer wheel, including \
         lazily-cancelled ones awaiting their tick (0 under the pool model).",
    );
    page.sample(
        "dtdbd_http_timer_wheel_armed",
        &[],
        load(&http.timers_armed),
    );
    page.family(
        "dtdbd_http_responses_total",
        MetricKind::Counter,
        "HTTP responses by status class.",
    );
    for (class, counter) in [
        ("2xx", &http.responses_2xx),
        ("4xx", &http.responses_4xx),
        ("5xx", &http.responses_5xx),
    ] {
        page.sample(
            "dtdbd_http_responses_total",
            &[("class", class)],
            load(counter),
        );
    }
    page.family(
        "dtdbd_http_requests_total",
        MetricKind::Counter,
        "Requests by endpoint.",
    );
    for (endpoint, counter) in [
        ("predict", &http.predict_calls),
        ("healthz", &http.healthz_calls),
        ("readyz", &http.readyz_calls),
        ("stats", &http.stats_calls),
        ("metrics", &http.metrics_calls),
        ("model", &http.model_calls),
        ("reload", &http.reload_calls),
    ] {
        page.sample(
            "dtdbd_http_requests_total",
            &[("endpoint", endpoint)],
            load(counter),
        );
    }
    page.family(
        "dtdbd_items_predicted_total",
        MetricKind::Counter,
        "Prediction items received over the wire (batch bodies count each item).",
    );
    page.sample(
        "dtdbd_items_predicted_total",
        &[],
        load(&http.items_predicted),
    );

    page.family(
        "dtdbd_requests_served_total",
        MetricKind::Counter,
        "Requests answered by the prediction workers.",
    );
    page.sample(
        "dtdbd_requests_served_total",
        &[],
        serving.requests_served as f64,
    );
    page.family(
        "dtdbd_batches_total",
        MetricKind::Counter,
        "Coalesced batches dispatched to the prediction workers.",
    );
    page.sample("dtdbd_batches_total", &[], serving.batches as f64);
    page.family(
        "dtdbd_queue_depth",
        MetricKind::Gauge,
        "Requests currently queued for the prediction workers.",
    );
    page.sample("dtdbd_queue_depth", &[], serving.queue_depth as f64);
    page.family(
        "dtdbd_workers",
        MetricKind::Gauge,
        "Configured prediction workers.",
    );
    page.sample("dtdbd_workers", &[], serving.workers as f64);
    page.family(
        "dtdbd_workers_alive",
        MetricKind::Gauge,
        "Prediction workers whose threads are still running.",
    );
    page.sample(
        "dtdbd_workers_alive",
        &[],
        default_model.workers_alive() as f64,
    );
    page.family(
        "dtdbd_ready",
        MetricKind::Gauge,
        "1 while GET /readyz answers 200, else 0.",
    );
    page.sample("dtdbd_ready", &[], if is_ready(ctx) { 1.0 } else { 0.0 });
    page.family(
        "dtdbd_worker_panics_total",
        MetricKind::Counter,
        "Prediction-worker batch-loop panics caught by the supervisor.",
    );
    page.sample(
        "dtdbd_worker_panics_total",
        &[],
        serving.worker_panics as f64,
    );
    page.family(
        "dtdbd_worker_restarts_total",
        MetricKind::Counter,
        "Prediction workers respawned with a fresh session after a panic.",
    );
    page.sample(
        "dtdbd_worker_restarts_total",
        &[],
        serving.worker_restarts as f64,
    );
    page.family(
        "dtdbd_requests_deadline_dropped_total",
        MetricKind::Counter,
        "Requests shed before inference because their deadline budget \
         expired in the micro-batch queue.",
    );
    page.sample(
        "dtdbd_requests_deadline_dropped_total",
        &[],
        serving.requests_deadline_dropped as f64,
    );

    page.family(
        "dtdbd_cache_requests_total",
        MetricKind::Counter,
        "Prediction cache lookups by outcome.",
    );
    for (outcome, v) in [("hit", serving.cache.hits), ("miss", serving.cache.misses)] {
        page.sample(
            "dtdbd_cache_requests_total",
            &[("outcome", outcome)],
            v as f64,
        );
    }
    page.family(
        "dtdbd_cache_evictions_total",
        MetricKind::Counter,
        "Prediction cache LRU evictions.",
    );
    page.sample(
        "dtdbd_cache_evictions_total",
        &[],
        serving.cache.evictions as f64,
    );
    page.family(
        "dtdbd_cache_entries",
        MetricKind::Gauge,
        "Prediction cache entries resident.",
    );
    page.sample("dtdbd_cache_entries", &[], serving.cache.entries as f64);
    page.family(
        "dtdbd_pool_reuse_hits_total",
        MetricKind::Counter,
        "Activation buffers recycled from the per-worker pools.",
    );
    page.sample(
        "dtdbd_pool_reuse_hits_total",
        &[],
        serving.pool_reuse_hits as f64,
    );
    page.family(
        "dtdbd_pool_alloc_misses_total",
        MetricKind::Counter,
        "Activation buffers freshly allocated by the per-worker pools.",
    );
    page.sample(
        "dtdbd_pool_alloc_misses_total",
        &[],
        serving.pool_alloc_misses as f64,
    );
    page.family(
        "dtdbd_routed_total",
        MetricKind::Counter,
        "Requests routed to a specialist queue vs the shared fallback.",
    );
    for (queue, v) in [
        ("specialist", serving.routing.routed_specialist),
        ("shared", serving.routing.routed_shared),
    ] {
        page.sample("dtdbd_routed_total", &[("queue", queue)], v as f64);
    }
    page.family(
        "dtdbd_precision",
        MetricKind::Gauge,
        "1 for the numeric precision the prediction workers run at \
         (fp32 or int8).",
    );
    page.sample(
        "dtdbd_precision",
        &[("precision", serving.precision.name())],
        1.0,
    );
    page.family(
        "dtdbd_quantized_param_bytes_per_worker",
        MetricKind::Gauge,
        "Mean bytes of int8 parameter codes + scales resident per worker \
         (0 under fp32).",
    );
    page.sample(
        "dtdbd_quantized_param_bytes_per_worker",
        &[],
        serving.quantized_param_bytes_per_worker as f64,
    );

    // Per-tenant families: one consistent snapshot of each tenant's active
    // model feeds every family, so a scrape racing a hot-swap stays
    // self-consistent per model id.
    let tenants: Vec<(String, u64, u64, u64, usize, usize)> = ctx
        .zoo
        .tenants()
        .iter()
        .map(|tenant| {
            let model = tenant.model();
            let stats = model.stats();
            (
                tenant.id().to_string(),
                model.version(),
                tenant.reloads(),
                tenant.requests_served_total(),
                model.workers_alive(),
                stats.queue_depth,
            )
        })
        .collect();
    page.family(
        "dtdbd_model_version",
        MetricKind::Gauge,
        "Checkpoint version ordinal each model id serves (1-based, +1 per \
         hot-swap).",
    );
    for (id, version, ..) in &tenants {
        page.sample("dtdbd_model_version", &[("model", id)], *version as f64);
    }
    page.family(
        "dtdbd_model_reloads_total",
        MetricKind::Counter,
        "Successful zero-downtime hot-swaps per model id.",
    );
    for (id, _, reloads, ..) in &tenants {
        page.sample(
            "dtdbd_model_reloads_total",
            &[("model", id)],
            *reloads as f64,
        );
    }
    page.family(
        "dtdbd_model_requests_served_total",
        MetricKind::Counter,
        "Requests served per model id, monotone across checkpoint versions \
         (retired versions fold their counts in at swap time).",
    );
    for (id, _, _, served, ..) in &tenants {
        page.sample(
            "dtdbd_model_requests_served_total",
            &[("model", id)],
            *served as f64,
        );
    }
    page.family(
        "dtdbd_model_workers_alive",
        MetricKind::Gauge,
        "Live prediction workers of each model id's active version.",
    );
    for (id, _, _, _, alive, _) in &tenants {
        page.sample("dtdbd_model_workers_alive", &[("model", id)], *alive as f64);
    }
    page.family(
        "dtdbd_model_queue_depth",
        MetricKind::Gauge,
        "Requests queued for each model id's active version.",
    );
    for (id, _, _, _, _, depth) in &tenants {
        page.sample("dtdbd_model_queue_depth", &[("model", id)], *depth as f64);
    }

    if let Some(telemetry) = default_model.telemetry() {
        let snap = telemetry.snapshot();
        let arch = snap.arch;
        page.family(
            "dtdbd_stage_latency_seconds",
            MetricKind::Histogram,
            "Wall-clock time per request stage; recorder is \"http\" for the \
             connection threads or a prediction worker index.",
        );
        for (recorder, stages) in &snap.recorders {
            for (stage, h) in stages {
                if h.count == 0 {
                    continue; // wire stages on workers (and vice versa) stay structurally empty
                }
                page.histogram(
                    "dtdbd_stage_latency_seconds",
                    &[
                        ("arch", arch),
                        ("recorder", recorder),
                        ("stage", stage.name()),
                    ],
                    h,
                );
            }
        }
        page.family(
            "dtdbd_kernel_latency_seconds",
            MetricKind::Histogram,
            "Wall-clock time per tensor kernel invocation.",
        );
        for (kernel, h) in &snap.kernels {
            if h.count == 0 {
                continue;
            }
            page.histogram(
                "dtdbd_kernel_latency_seconds",
                &[("arch", arch), ("kernel", kernel)],
                h,
            );
        }

        page.family(
            "dtdbd_predictions_non_finite_total",
            MetricKind::Counter,
            "Predictions whose probability was NaN or infinite; counted here \
             and excluded from the drift buckets and mean-shift.",
        );
        page.sample(
            "dtdbd_predictions_non_finite_total",
            &[("arch", arch)],
            snap.predictions_non_finite as f64,
        );
        page.family(
            "dtdbd_domain_predictions_total",
            MetricKind::Counter,
            "Predictions observed per domain by the drift tracker.",
        );
        for d in &snap.drift {
            let domain = d.domain.to_string();
            page.sample(
                "dtdbd_domain_predictions_total",
                &[("arch", arch), ("domain", &domain)],
                d.live_count as f64,
            );
        }
        if snap.drift.iter().any(|d| d.mean_shift.is_some()) {
            page.family(
                "dtdbd_domain_mean_shift",
                MetricKind::Gauge,
                "Absolute shift of the mean fake-probability against the training baseline.",
            );
            for d in &snap.drift {
                if let Some(shift) = d.mean_shift {
                    let domain = d.domain.to_string();
                    page.sample(
                        "dtdbd_domain_mean_shift",
                        &[("arch", arch), ("domain", &domain)],
                        shift,
                    );
                }
            }
        }
        if snap.drift.iter().any(|d| d.score.is_some()) {
            page.family(
                "dtdbd_domain_drift_score",
                MetricKind::Gauge,
                "Bucketed total-variation distance of the live fake-probability \
                 distribution against the training baseline, in [0, 1].",
            );
            for d in &snap.drift {
                if let Some(score) = d.score {
                    let domain = d.domain.to_string();
                    page.sample(
                        "dtdbd_domain_drift_score",
                        &[("arch", arch), ("domain", &domain)],
                        score,
                    );
                }
            }
        }
    }
    page.into_string()
}

fn handle_predict(body: &[u8], ctx: &Ctx, model: &TenantModel) -> Result<String, WireError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| WireError::bad_request("body_not_utf8", "request body is not valid UTF-8"))?;
    let doc = json::parse(text)
        .map_err(|e| WireError::bad_request("bad_json", format!("invalid JSON body: {e}")))?;
    if let Some(items) = doc.get("items") {
        // The batch envelope is as strict as single-request objects:
        // anything next to "items" is a client mistake, not a batch.
        if let Json::Obj(entries) = &doc {
            if let Some((key, _)) = entries.iter().find(|(k, _)| k != "items") {
                return Err(WireError::bad_request(
                    "bad_request",
                    format!("unknown batch field {key:?}"),
                ));
            }
        }
        let items = items
            .as_array()
            .ok_or_else(|| WireError::bad_request("bad_request", "\"items\" must be an array"))?;
        if items.is_empty() {
            return Err(WireError::bad_request(
                "bad_request",
                "\"items\" must not be empty",
            ));
        }
        let encoded = items
            .iter()
            .enumerate()
            .map(|(i, item)| encode_one(item, model, Some(i)))
            .collect::<Result<Vec<EncodedRequest>, WireError>>()?;
        let predictions = predict_all(encoded, ctx, model)?;
        Ok(Json::Obj(vec![
            ("count".into(), Json::Num(predictions.len() as f64)),
            (
                "predictions".into(),
                Json::Arr(predictions.iter().map(json::encode_prediction).collect()),
            ),
        ])
        .render())
    } else {
        let encoded = encode_one(&doc, model, None)?;
        let prediction = predict_all(vec![encoded], ctx, model)?.remove(0);
        Ok(json::encode_prediction(&prediction).render())
    }
}

fn encode_one(
    item: &Json,
    model: &TenantModel,
    index: Option<usize>,
) -> Result<EncodedRequest, WireError> {
    let at = |msg: String| match index {
        Some(i) => format!("item {i}: {msg}"),
        None => msg,
    };
    let request =
        json::decode_request(item).map_err(|msg| WireError::bad_request("bad_request", at(msg)))?;
    model
        .encoder()
        .encode(&request)
        .map_err(|e| WireError::bad_request(e.wire_code(), at(e.to_string())))
}

fn predict_all(
    encoded: Vec<EncodedRequest>,
    ctx: &Ctx,
    model: &TenantModel,
) -> Result<Vec<Prediction>, WireError> {
    ctx.stats
        .items_predicted
        .fetch_add(encoded.len() as u64, Ordering::Relaxed);
    // The wire-level timeout doubles as the inference deadline budget: a
    // request that already waited out its budget in the micro-batch queue is
    // shed there instead of burning a forward pass on an answer nobody is
    // still reading.
    let deadline = Some(Instant::now() + ctx.config.request_timeout);
    // Submit everything before waiting: a multi-item body becomes one
    // coalesced batch on an idle server.
    let handles: Vec<_> = encoded
        .into_iter()
        .map(|e| model.submit_encoded_with_deadline(e, deadline))
        .collect();
    // A crashed prediction worker must degrade to a typed shed response,
    // not take the connection worker down with it.
    handles
        .into_iter()
        .map(|h| {
            h.wait().map_err(|e| match e {
                PredictError::WorkerCrashed => WireError {
                    status: 503,
                    code: "worker_crashed",
                    message: "prediction worker crashed mid-batch; retry".to_string(),
                },
                PredictError::DeadlineExceeded => WireError {
                    status: 503,
                    code: "deadline_exceeded",
                    message: "request deadline expired in the batch queue".to_string(),
                },
                PredictError::Invalid(e) => WireError::bad_request(e.wire_code(), e.to_string()),
            })
        })
        .collect()
}

pub(crate) fn error_body(code: &str, message: &str) -> String {
    Json::Obj(vec![
        ("error".into(), Json::Str(code.to_string())),
        ("message".into(), Json::Str(message.to_string())),
    ])
    .render()
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Render a complete response — head and body — to one byte buffer. Shared
/// by the pool backend's blocking writer and the event loop's outgoing
/// connection buffers, so both models put bit-identical responses on the
/// wire.
pub(crate) fn response_bytes(
    status: u16,
    body: &str,
    content_type: &str,
    keep_alive: bool,
    extra_headers: &[(&'static str, String)],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    content_type: &str,
    keep_alive: bool,
    extra_headers: &[(&'static str, String)],
) -> io::Result<()> {
    stream.write_all(&response_bytes(
        status,
        body,
        content_type,
        keep_alive,
        extra_headers,
    ))?;
    stream.flush()
}

/// A minimal blocking HTTP/1.1 client with keep-alive, for tests, examples
/// and the benchmark. Not a general-purpose client: it assumes the
/// `Content-Length` framing this server always produces.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// A response as read by [`HttpClient`].
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers in order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, decoded as UTF-8.
    pub body: String,
}

impl ClientResponse {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse the body as JSON.
    pub fn json(&self) -> Result<Json, json::JsonError> {
        json::parse(&self.body)
    }

    /// `Retry-After` seconds, if the server attached one to a shed response.
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after").and_then(|v| v.parse().ok())
    }
}

fn invalid_data(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

impl HttpClient {
    /// Open a keep-alive connection to the server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issue one request and read its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: dtdbd\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// `GET` a path.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST` a JSON body to a path.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 8192];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let head_len = loop {
            if let Some(i) = find_subsequence(&self.buf, HEAD_END) {
                break i;
            }
            self.fill()?;
        };
        let head = String::from_utf8(self.buf[..head_len].to_vec())
            .map_err(|_| invalid_data("non-UTF-8 response head"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid_data("malformed status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| invalid_data("malformed response header"))?;
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| invalid_data("response missing Content-Length"))?;
        let body_start = head_len + HEAD_END.len();
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = String::from_utf8(self.buf[body_start..body_start + content_length].to_vec())
            .map_err(|_| invalid_data("non-UTF-8 response body"))?;
        self.buf.drain(..body_start + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::BatchingConfig;
    use crate::session::InferenceSession;
    use dtdbd_data::{weibo21_spec, GeneratorConfig, MultiDomainDataset, NewsGenerator};
    use dtdbd_models::{ModelConfig, TextCnnModel};
    use dtdbd_tensor::rng::Prng;
    use dtdbd_tensor::ParamStore;

    fn parse_bytes(bytes: &[u8]) -> ParseOutcome {
        let mut parser = RequestParser::new(8 * 1024, 1024 * 1024);
        parser.feed(bytes);
        parser.poll()
    }

    fn assert_failed(bytes: &[u8], status: u16, code: &str) {
        match parse_bytes(bytes) {
            ParseOutcome::Failed(e) => {
                assert_eq!((e.status, e.code), (status, code), "{:?}", e.message)
            }
            other => panic!("expected Failed({status}), got {other:?}"),
        }
    }

    #[test]
    fn parses_a_complete_post_with_body() {
        let outcome =
            parse_bytes(b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody");
        match outcome {
            ParseOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.target, "/predict");
                assert_eq!(req.header("host"), Some("x"));
                assert_eq!(req.body, b"body");
                assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn requests_arrive_incrementally_byte_by_byte() {
        let wire = b"GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n";
        let mut parser = RequestParser::new(1024, 1024);
        for (i, byte) in wire.iter().enumerate() {
            match parser.poll() {
                ParseOutcome::NeedMore => {}
                other => panic!("byte {i}: {other:?}"),
            }
            parser.feed(std::slice::from_ref(byte));
        }
        assert!(matches!(parser.poll(), ParseOutcome::Request(_)));
        assert_eq!(parser.buffered(), 0, "request consumed");
    }

    #[test]
    fn pipelined_requests_come_out_one_at_a_time() {
        let mut parser = RequestParser::new(1024, 1024);
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        match parser.poll() {
            ParseOutcome::Request(r) => assert_eq!(r.target, "/a"),
            other => panic!("{other:?}"),
        }
        match parser.poll() {
            ParseOutcome::Request(r) => assert_eq!(r.target, "/b"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(parser.poll(), ParseOutcome::NeedMore));
    }

    #[test]
    fn malformed_heads_map_to_400() {
        assert_failed(b"NONSENSE\r\n\r\n", 400, "bad_request_line");
        assert_failed(b"GET /x EXTRA HTTP/1.1\r\n\r\n", 400, "bad_request_line");
        assert_failed(b"get /x HTTP/1.1\r\n\r\n", 400, "bad_request_line");
        assert_failed(b"GET x HTTP/1.1\r\n\r\n", 400, "bad_request_line");
        assert_failed(b"GET /x HTTP/2.0\r\n\r\n", 400, "unsupported_version");
        assert_failed(b"GET /x HTTP/1.1\r\nNoColon\r\n\r\n", 400, "bad_header");
        assert_failed(b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n", 400, "bad_header");
        assert_failed(
            b"GET /x HTTP/1.1\r\nContent-Length: two\r\n\r\n",
            400,
            "bad_content_length",
        );
        assert_failed(
            b"GET /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            400,
            "bad_content_length",
        );
        assert_failed(
            b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            400,
            "unsupported_transfer_encoding",
        );
        assert_failed(b"GET /\xFF HTTP/1.1\r\n\r\n", 400, "bad_head");
    }

    #[test]
    fn oversized_heads_and_bodies_map_to_431_and_413() {
        let mut parser = RequestParser::new(64, 1024);
        parser.feed(b"GET / HTTP/1.1\r\n");
        parser.feed(&[b'a'; 100]);
        match parser.poll() {
            ParseOutcome::Failed(e) => assert_eq!(e.status, 431),
            other => panic!("{other:?}"),
        }

        let mut parser = RequestParser::new(1024, 16);
        parser.feed(b"POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
        match parser.poll() {
            ParseOutcome::Failed(e) => assert_eq!(e.status, 413),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn a_content_length_near_u64_max_is_rejected_not_truncated() {
        // Default limits: the pre-cast u64 comparison fires long before any
        // usize arithmetic could truncate or wrap.
        assert_failed(
            b"POST / HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n",
            413,
            "body_too_large",
        );
        // With the body budget wide open the limit check passes and the
        // checked add is the last line of defence against overflow.
        let mut parser = RequestParser::new(1024, usize::MAX);
        parser.feed(b"POST / HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n");
        match parser.poll() {
            ParseOutcome::Failed(e) => {
                assert_eq!((e.status, e.code), (413, "body_too_large"), "{}", e.message)
            }
            other => panic!("expected Failed(413), got {other:?}"),
        }
    }

    #[test]
    fn head_complete_tracks_the_blank_line_without_consuming() {
        let mut parser = RequestParser::new(1024, 1024);
        parser.feed(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n");
        assert!(!parser.head_complete());
        parser.feed(b"\r\n");
        assert!(parser.head_complete());
        parser.feed(b"body");
        assert!(matches!(parser.poll(), ParseOutcome::Request(_)));
        assert!(!parser.head_complete(), "head consumed with its request");
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_header() {
        let req = |bytes: &[u8]| match parse_bytes(bytes) {
            ParseOutcome::Request(r) => r.keep_alive,
            other => panic!("{other:?}"),
        };
        assert!(req(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(!req(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!req(b"GET / HTTP/1.0\r\n\r\n"));
        assert!(req(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
        assert!(!req(b"GET / HTTP/1.1\r\nConnection: TE, close\r\n\r\n"));
    }

    // --- end-to-end over a real socket -----------------------------------

    fn dataset() -> MultiDomainDataset {
        NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny()).generate_scaled(8, 0.02)
    }

    fn start_http(ds: &MultiDomainDataset) -> HttpServer {
        let cfg = ModelConfig::tiny(ds);
        let predict = PredictServer::start(BatchingConfig::default(), move |_| {
            let mut store = ParamStore::new();
            let model = TextCnnModel::student(&mut store, &cfg, &mut Prng::new(7));
            InferenceSession::new(model, store)
        });
        HttpServer::start(predict, HttpConfig::default()).expect("bind ephemeral port")
    }

    #[test]
    fn healthz_stats_and_predict_respond_over_tcp() {
        let ds = dataset();
        let server = start_http(&ds);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();

        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(
            health.json().unwrap().get("status").and_then(Json::as_str),
            Some("ok")
        );

        let item = &ds.items()[0];
        let body = json::encode_request(&dtdbd_data::InferenceRequest::new(
            item.tokens.clone(),
            item.domain,
        ))
        .render();
        let predict = client.post("/predict", &body).unwrap();
        assert_eq!(predict.status, 200, "{}", predict.body);
        let prob = predict
            .json()
            .unwrap()
            .get("fake_prob")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((0.0..=1.0).contains(&prob));

        let stats = client.get("/stats").unwrap();
        assert_eq!(stats.status, 200);
        let doc = stats.json().unwrap();
        assert_eq!(doc.get("requests_served").and_then(Json::as_u64), Some(1));
        let endpoints = doc.get("endpoints").unwrap();
        assert_eq!(endpoints.get("predict").and_then(Json::as_u64), Some(1));
        assert_eq!(endpoints.get("healthz").and_then(Json::as_u64), Some(1));
        // Kernel/cache tuning is visible on the wire.
        assert!(doc.get("threads").and_then(Json::as_u64).unwrap() >= 1);
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
        assert!(cache.get("capacity").and_then(Json::as_u64).unwrap() > 0);
        // The same item again is a cache hit, bit-identical on the wire.
        let again = client.post("/predict", &body).unwrap();
        assert_eq!(again.status, 200);
        let again_prob = again
            .json()
            .unwrap()
            .get("fake_prob")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(again_prob.to_bits(), prob.to_bits());
        let doc = client.get("/stats").unwrap().json().unwrap();
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
        // Telemetry rides along: stage quantiles and drift scores.
        assert_eq!(doc.get("ready").and_then(Json::as_bool), Some(true));
        let inference = doc.get("stages").unwrap().get("inference").unwrap();
        assert_eq!(inference.get("count").and_then(Json::as_u64), Some(1));
        assert!(inference.get("p99_us").and_then(Json::as_f64).unwrap() > 0.0);
        let drift = doc.get("drift").unwrap().as_array().unwrap();
        assert!(!drift.is_empty());
        let observed: u64 = drift
            .iter()
            .map(|d| d.get("live_count").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(observed, 2, "both wire answers feed the drift tracker");
    }

    #[test]
    fn metrics_page_lints_and_reflects_traffic() {
        let ds = dataset();
        let server = start_http(&ds);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();

        let item = &ds.items()[0];
        let body = json::encode_request(&dtdbd_data::InferenceRequest::new(
            item.tokens.clone(),
            item.domain,
        ))
        .render();
        assert_eq!(client.post("/predict", &body).unwrap().status, 200);

        let scrape = client.get("/metrics").unwrap();
        assert_eq!(scrape.status, 200);
        assert_eq!(
            scrape.header("content-type"),
            Some("text/plain; version=0.0.4")
        );
        crate::prom::lint(&scrape.body).unwrap_or_else(|e| panic!("{e}\n---\n{}", scrape.body));
        assert!(
            scrape
                .body
                .contains("dtdbd_http_requests_total{endpoint=\"predict\"} 1"),
            "{}",
            scrape.body
        );
        assert!(
            scrape.body.contains("dtdbd_requests_served_total 1"),
            "{}",
            scrape.body
        );
        // The stage histograms carry real samples once traffic flowed.
        assert!(
            scrape.body.contains("dtdbd_stage_latency_seconds_bucket"),
            "{}",
            scrape.body
        );
        assert!(
            scrape.body.contains("stage=\"inference\""),
            "{}",
            scrape.body
        );
        assert!(
            scrape.body.contains("dtdbd_domain_predictions_total"),
            "{}",
            scrape.body
        );
        // A second scrape observes the first: the metrics counter moved.
        let again = client.get("/metrics").unwrap();
        assert!(
            again
                .body
                .contains("dtdbd_http_requests_total{endpoint=\"metrics\"} 2"),
            "{}",
            again.body
        );

        let wrong_method = client.post("/metrics", "{}").unwrap();
        assert_eq!(wrong_method.status, 405);
        assert_eq!(wrong_method.header("allow"), Some("GET"));
    }

    #[test]
    fn model_discovery_and_per_model_routing_answer() {
        let ds = dataset();
        let server = start_http(&ds);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();

        // The routing table: a single-model server is a one-tenant zoo
        // under the default id.
        let listing = client.get("/model").unwrap();
        assert_eq!(listing.status, 200, "{}", listing.body);
        let doc = listing.json().unwrap();
        assert_eq!(doc.get("default").and_then(Json::as_str), Some("default"));
        let models = doc.get("models").unwrap().as_array().unwrap();
        assert_eq!(models.len(), 1);
        let descriptor = &models[0];
        assert_eq!(
            descriptor.get("model").and_then(Json::as_str),
            Some("default")
        );
        assert_eq!(descriptor.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            descriptor.get("reloadable").and_then(Json::as_bool),
            Some(false)
        );
        assert!(!descriptor
            .get("arch")
            .and_then(Json::as_str)
            .unwrap()
            .is_empty());

        let one = client.get("/model/default").unwrap();
        assert_eq!(one.status, 200, "{}", one.body);
        assert_eq!(
            one.json().unwrap().get("model").and_then(Json::as_str),
            Some("default")
        );
        let missing = client.get("/model/nope").unwrap();
        assert_eq!(missing.status, 404);
        assert_eq!(
            missing.json().unwrap().get("error").and_then(Json::as_str),
            Some("unknown_model")
        );
        let wrong_method = client.post("/model", "{}").unwrap();
        assert_eq!(wrong_method.status, 405);
        assert_eq!(wrong_method.header("allow"), Some("GET"));

        // `POST /predict/<id>` answers bit-identically to the bare route.
        let item = &ds.items()[0];
        let body = json::encode_request(&dtdbd_data::InferenceRequest::new(
            item.tokens.clone(),
            item.domain,
        ))
        .render();
        let bare = client.post("/predict", &body).unwrap();
        assert_eq!(bare.status, 200, "{}", bare.body);
        let routed = client.post("/predict/default", &body).unwrap();
        assert_eq!(routed.status, 200, "{}", routed.body);
        let prob = |r: &ClientResponse| {
            r.json()
                .unwrap()
                .get("fake_prob")
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert_eq!(prob(&bare).to_bits(), prob(&routed).to_bits());
        assert_eq!(client.post("/predict/nope", &body).unwrap().status, 404);

        // A resident (non-file) tenant cannot be hot-swapped: typed 400.
        let reload = client.post("/admin/reload/default", "").unwrap();
        assert_eq!(reload.status, 400, "{}", reload.body);
        assert_eq!(
            reload.json().unwrap().get("error").and_then(Json::as_str),
            Some("not_reloadable")
        );
        assert_eq!(client.post("/admin/reload/nope", "").unwrap().status, 404);

        // /stats carries the per-model object and counts the new endpoints.
        let stats = client.get("/stats").unwrap().json().unwrap();
        let per_model = stats.get("models").unwrap().get("default").unwrap();
        assert_eq!(per_model.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(per_model.get("reloads").and_then(Json::as_u64), Some(0));
        assert_eq!(
            per_model
                .get("requests_served_total")
                .and_then(Json::as_u64),
            Some(2)
        );
        let endpoints = stats.get("endpoints").unwrap();
        assert_eq!(endpoints.get("model").and_then(Json::as_u64), Some(2));
        assert_eq!(endpoints.get("reload").and_then(Json::as_u64), Some(2));

        // /metrics grows the model-labelled families and still lints.
        let scrape = client.get("/metrics").unwrap();
        crate::prom::lint(&scrape.body).unwrap_or_else(|e| panic!("{e}\n---\n{}", scrape.body));
        assert!(
            scrape
                .body
                .contains("dtdbd_model_version{model=\"default\"} 1"),
            "{}",
            scrape.body
        );
        assert!(
            scrape
                .body
                .contains("dtdbd_model_requests_served_total{model=\"default\"} 2"),
            "{}",
            scrape.body
        );
    }

    #[test]
    fn readyz_flips_to_503_when_draining_while_healthz_stays_ok() {
        let ds = dataset();
        // Pool model: the listener keeps accepting while draining (the
        // readiness flip is the only signal a load balancer needs), which
        // lets this test prove liveness on fresh connections. Under epoll
        // the drain additionally drops the accept interest.
        let server = start_http_as(
            &ds,
            HttpConfig {
                connection_model: ConnectionModel::Pool,
                ..HttpConfig::default()
            },
        );
        let mut client = HttpClient::connect(server.local_addr()).unwrap();

        let ready = client.get("/readyz").unwrap();
        assert_eq!(ready.status, 200, "{}", ready.body);
        let doc = ready.json().unwrap();
        assert_eq!(doc.get("ready").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("draining").and_then(Json::as_bool), Some(false));
        assert!(doc.get("workers_alive").and_then(Json::as_u64).unwrap() >= 1);

        server.begin_drain();
        let draining = client.get("/readyz").unwrap();
        assert_eq!(draining.status, 503);
        let doc = draining.json().unwrap();
        assert_eq!(doc.get("ready").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("draining").and_then(Json::as_bool), Some(true));
        // The response that announced the drain also released the
        // keep-alive client: capacity is not coming back here.
        assert_eq!(draining.header("connection"), Some("close"));
        // Liveness is untouched: fresh connections still answer and work
        // still runs to completion (one request per connection now).
        let mut probe = HttpClient::connect(server.local_addr()).unwrap();
        assert_eq!(probe.get("/healthz").unwrap().status, 200);
        let item = &ds.items()[0];
        let body = json::encode_request(&dtdbd_data::InferenceRequest::new(
            item.tokens.clone(),
            item.domain,
        ))
        .render();
        let mut probe = HttpClient::connect(server.local_addr()).unwrap();
        assert_eq!(probe.post("/predict", &body).unwrap().status, 200);
    }

    fn drain_releases_idle_keep_alive_promptly(model: ConnectionModel) {
        let ds = dataset();
        // A read_timeout far beyond what the test tolerates: the prompt cut
        // below can only come from the shortened drain deadline.
        let server = start_http_as(
            &ds,
            HttpConfig {
                connection_model: model,
                read_timeout: Duration::from_secs(30),
                ..HttpConfig::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 2048];
        let n = stream.read(&mut buf).unwrap();
        assert!(
            String::from_utf8_lossy(&buf[..n]).starts_with("HTTP/1.1 200"),
            "first request answered"
        );
        // Idle now. The drain must cut this connection in ~one drain
        // deadline, not the 30 s read_timeout.
        server.begin_drain();
        let t0 = Instant::now();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap(); // EOF, not a reset
        let cut_after = t0.elapsed();
        assert!(
            cut_after < Duration::from_secs(5),
            "idle connection survived {cut_after:?} into the drain"
        );
    }

    #[test]
    fn drain_releases_idle_keep_alive_promptly_under_epoll() {
        drain_releases_idle_keep_alive_promptly(ConnectionModel::Epoll);
    }

    #[test]
    fn drain_releases_idle_keep_alive_promptly_under_pool() {
        drain_releases_idle_keep_alive_promptly(ConnectionModel::Pool);
    }

    #[test]
    fn batch_bodies_answer_in_request_order() {
        let ds = dataset();
        let server = start_http(&ds);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let items: Vec<Json> = ds.items()[..6]
            .iter()
            .map(|item| {
                json::encode_request(&dtdbd_data::InferenceRequest::new(
                    item.tokens.clone(),
                    item.domain,
                ))
            })
            .collect();
        let body = Json::Obj(vec![("items".into(), Json::Arr(items))]).render();
        let response = client.post("/predict", &body).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let doc = response.json().unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(6));
        let predictions = doc.get("predictions").unwrap().as_array().unwrap();
        assert_eq!(predictions.len(), 6);

        // Same items, one at a time: per-item answers must not depend on
        // their neighbours in the batch body.
        for (i, expected) in predictions.iter().enumerate() {
            let item = &ds.items()[i];
            let single = client
                .post(
                    "/predict",
                    &json::encode_request(&dtdbd_data::InferenceRequest::new(
                        item.tokens.clone(),
                        item.domain,
                    ))
                    .render(),
                )
                .unwrap();
            assert_eq!(
                single.json().unwrap().get("fake_prob"),
                expected.get("fake_prob"),
                "item {i}"
            );
        }
    }

    #[test]
    fn wire_errors_have_the_documented_statuses() {
        let ds = dataset();
        let server = start_http(&ds);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();

        let missing = client.get("/nope").unwrap();
        assert_eq!(missing.status, 404);

        let wrong_method = client.get("/predict").unwrap();
        assert_eq!(wrong_method.status, 405);
        assert_eq!(wrong_method.header("allow"), Some("POST"));

        let bad_json = client.post("/predict", "{not json").unwrap();
        assert_eq!(bad_json.status, 400);
        assert_eq!(
            bad_json.json().unwrap().get("error").and_then(Json::as_str),
            Some("bad_json")
        );

        // Data-layer validation failure surfaces its wire code.
        let out_of_vocab = client
            .post("/predict", r#"{"tokens": [4000000000], "domain": 0}"#)
            .unwrap();
        assert_eq!(out_of_vocab.status, 400);
        assert_eq!(
            out_of_vocab
                .json()
                .unwrap()
                .get("error")
                .and_then(Json::as_str),
            Some("token_out_of_range")
        );

        // An invalid item inside a batch names its index.
        let mixed = client
            .post(
                "/predict",
                r#"{"items": [{"tokens": [1], "domain": 0}, {"tokens": [], "domain": 0}]}"#,
            )
            .unwrap();
        assert_eq!(mixed.status, 400);
        let doc = mixed.json().unwrap();
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some("empty_tokens")
        );
        assert!(doc
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("item 1:"));

        // The connection survives 4xx responses (keep-alive) — prove it by
        // asking for health afterwards.
        assert_eq!(client.get("/healthz").unwrap().status, 200);
    }

    #[test]
    fn batch_envelopes_reject_unknown_sibling_fields() {
        let ds = dataset();
        let server = start_http(&ds);
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let response = client
            .post(
                "/predict",
                r#"{"items": [{"tokens": [1], "domain": 0}], "optoins": 1}"#,
            )
            .unwrap();
        assert_eq!(response.status, 400, "{}", response.body);
        assert!(response.body.contains("optoins"), "{}", response.body);
    }

    #[test]
    fn shutdown_is_not_blocked_by_a_busy_keep_alive_client() {
        let ds = dataset();
        let server = start_http(&ds);
        let addr = server.local_addr();
        // A well-behaved client that hammers /healthz on one keep-alive
        // connection until the server closes it.
        let client = thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            for _ in 0..100_000 {
                if client.get("/healthz").is_err() {
                    return true; // server closed on us: expected
                }
            }
            false
        });
        thread::sleep(Duration::from_millis(50)); // let the loop get going
        let t0 = Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "shutdown blocked behind a busy keep-alive client"
        );
        assert!(client.join().unwrap(), "client never saw the close");
    }

    fn start_http_as(ds: &MultiDomainDataset, config: HttpConfig) -> HttpServer {
        let cfg = ModelConfig::tiny(ds);
        let predict = PredictServer::start(BatchingConfig::default(), move |_| {
            let mut store = ParamStore::new();
            let model = TextCnnModel::student(&mut store, &cfg, &mut Prng::new(7));
            InferenceSession::new(model, store)
        });
        HttpServer::start(predict, config).expect("bind ephemeral port")
    }

    fn stats_u64(server: &HttpServer, field: &str) -> u64 {
        let mut probe = HttpClient::connect(server.local_addr()).unwrap();
        let doc = probe.get("/stats").unwrap().json().unwrap();
        doc.get("http")
            .unwrap()
            .get(field)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing http.{field}"))
    }

    fn slow_loris_is_cut_at_request_timeout(model: ConnectionModel) {
        let ds = dataset();
        let server = start_http_as(
            &ds,
            HttpConfig {
                connection_model: model,
                read_timeout: Duration::from_millis(500),
                request_timeout: Duration::from_millis(100),
                ..HttpConfig::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Drip a never-finishing head, each write well inside read_timeout
        // but the whole request far beyond request_timeout.
        let _ = stream.write_all(b"POST /predict HTTP/1.1\r\n");
        for _ in 0..10 {
            thread::sleep(Duration::from_millis(30));
            // Ignore write errors: the server closes once the deadline hits.
            let _ = stream.write_all(b"X-Pad: a\r\n");
        }
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 408"), "{text:?}");
        assert!(stats_u64(&server, "request_timeouts") >= 1);
    }

    #[test]
    fn slow_loris_requests_hit_the_overall_deadline_under_epoll() {
        // On platforms without the epoll backend this resolves to the pool
        // model — the deadline semantics are identical either way.
        slow_loris_is_cut_at_request_timeout(ConnectionModel::Epoll);
    }

    #[test]
    fn slow_loris_requests_hit_the_overall_deadline_under_pool() {
        slow_loris_is_cut_at_request_timeout(ConnectionModel::Pool);
    }

    fn idle_keep_alive_is_cut_at_read_timeout(model: ConnectionModel) {
        let ds = dataset();
        let server = start_http_as(
            &ds,
            HttpConfig {
                connection_model: model,
                read_timeout: Duration::from_millis(150),
                request_timeout: Duration::from_secs(5),
                ..HttpConfig::default()
            },
        );
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 2048];
        let n = stream.read(&mut buf).unwrap();
        assert!(
            String::from_utf8_lossy(&buf[..n]).starts_with("HTTP/1.1 200"),
            "first request answered"
        );
        // Go idle: the server must cut the connection at read_timeout —
        // promptly, but never before the deadline.
        let t0 = Instant::now();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap(); // EOF, not a reset
        let cut_after = t0.elapsed();
        assert!(
            cut_after < Duration::from_secs(5),
            "idle connection survived {cut_after:?}"
        );
        assert!(
            cut_after >= Duration::from_millis(100),
            "cut {cut_after:?} in, before the idle deadline"
        );
        assert!(stats_u64(&server, "idle_timeouts") >= 1);
    }

    #[test]
    fn idle_keep_alive_connections_are_cut_under_epoll() {
        idle_keep_alive_is_cut_at_read_timeout(ConnectionModel::Epoll);
    }

    #[test]
    fn idle_keep_alive_connections_are_cut_under_pool() {
        idle_keep_alive_is_cut_at_read_timeout(ConnectionModel::Pool);
    }

    #[test]
    fn epoll_holds_many_idle_connections_above_its_dispatcher_count() {
        if ConnectionModel::Epoll.resolved() != "epoll" {
            return; // no epoll backend on this platform
        }
        let ds = dataset();
        // 2 dispatchers, 50 concurrent keep-alive connections: under the
        // pool model this count would exhaust the handler threads.
        let server = start_http_as(
            &ds,
            HttpConfig {
                connection_model: ConnectionModel::Epoll,
                connection_workers: 2,
                read_timeout: Duration::from_secs(30),
                ..HttpConfig::default()
            },
        );
        let mut clients: Vec<HttpClient> = (0..50)
            .map(|_| HttpClient::connect(server.local_addr()).unwrap())
            .collect();
        for client in &mut clients {
            assert_eq!(client.get("/healthz").unwrap().status, 200);
        }
        let doc = clients[0].get("/stats").unwrap().json().unwrap();
        let http = doc.get("http").unwrap();
        assert_eq!(
            http.get("connection_model").and_then(Json::as_str),
            Some("epoll")
        );
        let open = http.get("open_connections").and_then(Json::as_u64).unwrap();
        assert!(open >= 50, "only {open} connections open");
        let armed = http
            .get("timer_wheel_armed")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(armed >= 1, "idle deadlines should sit on the wheel");
        // Every connection is still serviced on a second round.
        for client in &mut clients {
            assert_eq!(client.get("/healthz").unwrap().status, 200);
        }
    }

    #[test]
    fn dropping_the_listener_closes_the_port_and_drains() {
        let ds = dataset();
        let server = start_http(&ds);
        let addr = server.local_addr();
        assert_eq!(
            HttpClient::connect(addr)
                .unwrap()
                .get("/healthz")
                .unwrap()
                .status,
            200
        );
        drop(server);
        // The port no longer accepts (either refused, or accepted by a
        // dead listener that immediately closes — both mean no response).
        let refused = match HttpClient::connect(addr) {
            Err(_) => true,
            Ok(mut client) => client.get("/healthz").is_err(),
        };
        assert!(refused, "listener still answering after drop");
    }
}
