//! The multi-tenant model zoo: several resident checkpoints keyed by model
//! id, each with its own [`PredictServer`] (worker group, micro-batch
//! queues, prediction cache, supervision counters), plus zero-downtime
//! hot-swap.
//!
//! # Routing
//!
//! The HTTP front-end resolves `POST /predict/<id>` to the tenant named
//! `<id>`; bare `POST /predict` serves the zoo's configured default id, so
//! single-model deployments keep their wire protocol unchanged. `GET
//! /model` lists every tenant; `GET /model/<id>` describes one.
//!
//! # Shard-pool dedup
//!
//! Tenants whose frozen embedding tables are **byte-identical** share one
//! resident [`ShardStore`]. Identity is the table's content digest
//! ([`ShardStore::digest`]: shape + raw f32 bits) together with its
//! parameter name — never the parameter name alone, which two different
//! checkpoints can reuse for different values. The registry is consulted at
//! tenant registration and again on every reload; entries no longer
//! referenced by any live tenant are pruned.
//!
//! # Hot-swap state machine
//!
//! `POST /admin/reload/<id>` walks one tenant through:
//!
//! ```text
//! serving vN ──load──▶ vN+1 built beside vN (own workers, fresh cache)
//!            ──warm──▶ one synthetic request through vN+1 (pools warm)
//!            ──flip──▶ the tenant's active Arc now points at vN+1;
//!                      every *new* request snapshots vN+1
//!            ──drain─▶ wait for in-flight snapshots of vN to resolve
//!                      (each request runs entirely on the version it
//!                      snapshotted — batch-boundary granularity)
//!            ──retire▶ vN's served count is folded into the tenant's
//!                      retired total, its queues drained, workers joined
//! ```
//!
//! Zero requests are dropped (the old server's shutdown drains every queued
//! job) and none are mis-versioned (a request holds its `Arc` snapshot from
//! encode to reply). Reloads of one tenant serialize behind a per-tenant
//! lock; other tenants keep serving untouched throughout.

use crate::builder::{session_from_checkpoint, StartError};
use crate::checkpoint::Checkpoint;
use crate::server::{BatchingConfig, PredictServer, ServerTuning};
use crate::shards::ShardStore;
use dtdbd_data::InferenceRequest;
use std::ops::Deref;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// The model id bare `/predict` serves when the deployment never names one.
pub const DEFAULT_MODEL_ID: &str = "default";

/// How long [`ModelZoo::reload`] waits for in-flight requests against the
/// retired version to resolve before giving up on folding its counters in
/// eagerly (the last in-flight holder still drains it on drop).
const RETIRE_DEADLINE: Duration = Duration::from_secs(30);

/// One version of one tenant's model: the serving core plus the descriptor
/// `GET /model/<id>` reports. Derefs to its [`PredictServer`], so handles
/// snapshotted from [`Tenant::model`] predict directly.
pub struct TenantModel {
    server: PredictServer,
    /// Checkpoint version ordinal: 1 for the registered checkpoint, +1 per
    /// successful reload.
    version: u64,
    /// Side-state chunk tags the checkpoint carried (model chunks only).
    side_state_tags: Vec<String>,
}

impl TenantModel {
    /// Wrap an already-started server as version `version` of a tenant.
    pub(crate) fn new(server: PredictServer, version: u64, side_state_tags: Vec<String>) -> Self {
        Self {
            server,
            version,
            side_state_tags,
        }
    }

    /// Checkpoint version ordinal of this model (1-based, +1 per reload).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Side-state chunk tags of the checkpoint this model restored.
    pub fn side_state_tags(&self) -> &[String] {
        &self.side_state_tags
    }
}

impl Deref for TenantModel {
    type Target = PredictServer;
    fn deref(&self) -> &PredictServer {
        &self.server
    }
}

/// One resident model id: the active version behind a swap point, plus the
/// counters that survive swaps.
pub struct Tenant {
    id: String,
    /// Checkpoint file the tenant reloads from; `None` = registered from a
    /// resident checkpoint, not reloadable.
    source: Option<PathBuf>,
    /// The swap point. Readers clone the `Arc` (one `RwLock` read + one
    /// refcount bump) and run their whole request against that snapshot.
    active: RwLock<Arc<TenantModel>>,
    /// Serializes reloads of this tenant (concurrent reloads of *different*
    /// tenants proceed independently).
    reload_lock: Mutex<()>,
    /// Successful hot-swaps performed.
    reloads: AtomicU64,
    /// Requests served by retired versions (folded in at retirement), so
    /// `requests_served_total` is monotone across swaps.
    retired_requests: AtomicU64,
}

impl Tenant {
    /// The tenant's model id (the `<id>` of `POST /predict/<id>`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Whether `POST /admin/reload/<id>` can re-read this tenant from disk.
    pub fn reloadable(&self) -> bool {
        self.source.is_some()
    }

    /// Snapshot the active version. The returned handle pins that version
    /// for the caller's whole request: a reload flipping the swap point
    /// mid-request never changes the model the request runs on.
    pub fn model(&self) -> Arc<TenantModel> {
        Arc::clone(&self.active.read().expect("swap point poisoned"))
    }

    /// Successful hot-swaps of this tenant.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Requests served across every version: the active server's count plus
    /// everything folded in from retired versions.
    pub fn requests_served_total(&self) -> u64 {
        self.retired_requests.load(Ordering::Relaxed) + self.model().stats().requests_served
    }
}

/// Why a [`ModelZoo::reload`] failed. Each maps to one wire status: unknown
/// id → 404, no file source → 400, load/build trouble → 503 with retry
/// advice (the checkpoint on disk may still be mid-write).
#[derive(Debug)]
pub enum ReloadError {
    /// No tenant with the requested id.
    UnknownModel(String),
    /// The tenant was registered from a resident checkpoint, not a path —
    /// there is nothing on disk to re-read.
    NotReloadable(String),
    /// Loading or restoring the new checkpoint (or starting its workers)
    /// failed; the old version keeps serving untouched.
    Failed(StartError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownModel(id) => write!(f, "no model registered under id {id:?}"),
            Self::NotReloadable(id) => {
                write!(f, "model {id:?} has no checkpoint path to reload from")
            }
            Self::Failed(e) => write!(f, "reload failed, previous version kept: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// A pool the registry holds for live tenants. Sharing key: content digest
/// plus parameter name (the digest decides identity; the name is required
/// for sessions to locate their own copy to drop).
struct PoolEntry {
    digest: u64,
    param_name: String,
    pool: ShardStore,
}

/// The template a zoo rebuilds tenants from on reload: the same batching
/// and tuning every tenant was started with (drift baseline and shard pool
/// are per-tenant and re-derived from the incoming checkpoint).
struct RebuildSpec {
    batching: BatchingConfig,
    tuning: ServerTuning,
}

/// Several resident models keyed by id, sharing byte-identical shard pools,
/// each hot-swappable without dropping traffic.
pub struct ModelZoo {
    tenants: Vec<Arc<Tenant>>,
    default_index: usize,
    /// `None` for zoos wrapped around a pre-started [`PredictServer`]
    /// (the single-model compatibility path): no template, no reloads.
    rebuild: Option<RebuildSpec>,
    pools: Mutex<Vec<PoolEntry>>,
}

impl ModelZoo {
    /// Wrap one pre-started server as a single-tenant zoo under
    /// [`DEFAULT_MODEL_ID`]. The compatibility path behind
    /// [`crate::HttpServer::start`]: routing, `/model` and per-model stats
    /// all work; reloads report the tenant as not reloadable.
    pub fn single(server: PredictServer) -> Self {
        Self {
            tenants: vec![Arc::new(Tenant {
                id: DEFAULT_MODEL_ID.to_string(),
                source: None,
                active: RwLock::new(Arc::new(TenantModel::new(server, 1, Vec::new()))),
                reload_lock: Mutex::new(()),
                reloads: AtomicU64::new(0),
                retired_requests: AtomicU64::new(0),
            })],
            default_index: 0,
            rebuild: None,
            pools: Mutex::new(Vec::new()),
        }
    }

    /// Build a zoo from registered tenant specs. Called by
    /// [`crate::ServerBuilder::try_start_zoo`]; tenants sharing
    /// byte-identical frozen tables come out sharing one pool.
    pub(crate) fn from_specs(
        specs: Vec<(String, Checkpoint, Option<PathBuf>)>,
        default_id: &str,
        batching: BatchingConfig,
        tuning: ServerTuning,
    ) -> Result<Self, StartError> {
        let rebuild = RebuildSpec { batching, tuning };
        let pools = Mutex::new(Vec::new());
        let mut tenants = Vec::with_capacity(specs.len());
        for (id, checkpoint, source) in &specs {
            let model =
                build_tenant_model(checkpoint, &rebuild.batching, &rebuild.tuning, &pools, 1)?;
            tenants.push(Arc::new(Tenant {
                id: id.clone(),
                source: source.clone(),
                active: RwLock::new(Arc::new(model)),
                reload_lock: Mutex::new(()),
                reloads: AtomicU64::new(0),
                retired_requests: AtomicU64::new(0),
            }));
        }
        let default_index = tenants.iter().position(|t| t.id == default_id).unwrap_or(0);
        Ok(Self {
            tenants,
            default_index,
            rebuild: Some(rebuild),
            pools,
        })
    }

    /// Every resident tenant, in registration order.
    pub fn tenants(&self) -> &[Arc<Tenant>] {
        &self.tenants
    }

    /// The tenant bare `/predict` routes to.
    pub fn default_tenant(&self) -> &Arc<Tenant> {
        &self.tenants[self.default_index]
    }

    /// Model id of the default tenant.
    pub fn default_id(&self) -> &str {
        &self.tenants[self.default_index].id
    }

    /// Look a tenant up by id.
    pub fn tenant(&self, id: &str) -> Option<&Arc<Tenant>> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Snapshot the default tenant's active model (what the single-model
    /// surfaces — bare `/predict`, top-level `/stats`, unlabeled `/metrics`
    /// families — serve).
    pub fn default_model(&self) -> Arc<TenantModel> {
        self.default_tenant().model()
    }

    /// Shard-pool bytes resident in the process, counting each distinct
    /// pool (by content digest) **once** however many tenants share it.
    pub fn shard_pool_bytes_deduped(&self) -> u64 {
        let mut seen: Vec<u64> = Vec::new();
        let mut total = 0u64;
        for tenant in &self.tenants {
            let model = tenant.model();
            let Some(digest) = model.shard_pool_digest() else {
                continue;
            };
            if !seen.contains(&digest) {
                seen.push(digest);
                total += model.stats().shard_pool_bytes;
            }
        }
        total
    }

    /// Workers alive across every tenant, against the total configured —
    /// readiness means every tenant is at full capacity.
    pub fn workers_health(&self) -> (usize, usize) {
        let mut alive = 0;
        let mut configured = 0;
        for tenant in &self.tenants {
            let model = tenant.model();
            alive += model.workers_alive();
            configured += model.stats().workers;
        }
        (alive, configured)
    }

    /// Hot-swap one tenant to the current contents of its checkpoint file.
    /// Returns the new version ordinal. The swap is atomic at batch
    /// boundaries: requests that snapshotted vN finish on vN, requests
    /// arriving after the flip run on vN+1, nothing is dropped.
    pub fn reload(&self, id: &str) -> Result<u64, ReloadError> {
        let tenant = self
            .tenant(id)
            .ok_or_else(|| ReloadError::UnknownModel(id.to_string()))?;
        let _guard = tenant
            .reload_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let source = tenant
            .source
            .as_ref()
            .ok_or_else(|| ReloadError::NotReloadable(id.to_string()))?;
        let spec = self
            .rebuild
            .as_ref()
            .ok_or_else(|| ReloadError::NotReloadable(id.to_string()))?;
        let checkpoint =
            Checkpoint::load(source).map_err(|e| ReloadError::Failed(StartError::Checkpoint(e)))?;
        let old = tenant.model();
        let next_version = old.version() + 1;
        let fresh = build_tenant_model(
            &checkpoint,
            &spec.batching,
            &spec.tuning,
            &self.pools,
            next_version,
        )
        .map_err(ReloadError::Failed)?;
        // Warm the new version before it takes traffic: one synthetic
        // request forces the first forward pass (buffer pools allocate,
        // caches prime) off the serving path. The warm request counts in
        // the new version's served total — exactly one per reload, which
        // the parity battery reconciles against.
        let _ = fresh.predict(&warm_request());
        let fresh = Arc::new(fresh);
        {
            let mut active = tenant.active.write().expect("swap point poisoned");
            *active = Arc::clone(&fresh);
        }
        // Drain: in-flight requests hold their own snapshots of vN; once
        // the last one resolves, ours is the only reference left. The old
        // server's drop then drains its queues and joins its workers.
        let deadline = Instant::now() + RETIRE_DEADLINE;
        let old = {
            let mut old = old;
            loop {
                match Arc::try_unwrap(old) {
                    Ok(model) => break Some(model),
                    Err(still_shared) => {
                        if Instant::now() >= deadline {
                            // Give up on eager retirement; the last holder
                            // drains it on drop. Counter folding happens
                            // here regardless so totals stay monotone.
                            tenant
                                .retired_requests
                                .fetch_add(still_shared.stats().requests_served, Ordering::Relaxed);
                            break None;
                        }
                        old = still_shared;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        };
        if let Some(model) = old {
            tenant
                .retired_requests
                .fetch_add(model.stats().requests_served, Ordering::Relaxed);
            drop(model); // drains queues, joins vN's workers
        }
        tenant.reloads.fetch_add(1, Ordering::Relaxed);
        self.prune_pools();
        Ok(next_version)
    }

    /// Drop registry entries no live tenant references any more (a reload
    /// that changed the table leaves the old pool orphaned).
    fn prune_pools(&self) {
        let live: Vec<u64> = self
            .tenants
            .iter()
            .filter_map(|t| t.model().shard_pool_digest())
            .collect();
        let mut pools = self.pools.lock().expect("pool registry poisoned");
        pools.retain(|entry| live.contains(&entry.digest));
    }
}

/// The synthetic request reloads warm new versions with: the first token of
/// the vocabulary in the first domain — valid under every corpus geometry
/// the generator produces.
fn warm_request() -> InferenceRequest {
    InferenceRequest::new(vec![0], 0)
}

/// Build one tenant version from a checkpoint: probe the restore, wire the
/// drift baseline, dedup the shard pool through the registry, start the
/// worker group.
fn build_tenant_model(
    checkpoint: &Checkpoint,
    batching: &BatchingConfig,
    tuning: &ServerTuning,
    pools: &Mutex<Vec<PoolEntry>>,
    version: u64,
) -> Result<TenantModel, StartError> {
    // Fail fast on a bad checkpoint instead of panicking in a worker
    // factory (same discipline as `try_start_from_checkpoint`).
    let probe = session_from_checkpoint(checkpoint)?;
    drop(probe);
    let mut tuning = tuning.clone();
    if tuning.drift_baseline.is_none() {
        tuning.drift_baseline = checkpoint.telemetry_baseline()?;
    }
    if tuning.embedding_shards > 0 {
        let candidate = ShardStore::build_with_precision(
            &checkpoint.params,
            checkpoint.config.vocab_size,
            tuning.embedding_shards,
            tuning.precision,
        )?;
        let mut pools = pools.lock().expect("pool registry poisoned");
        let pool = match pools
            .iter()
            .find(|e| e.digest == candidate.digest() && e.param_name == candidate.param_name())
        {
            Some(entry) => entry.pool.clone(),
            None => {
                pools.push(PoolEntry {
                    digest: candidate.digest(),
                    param_name: candidate.param_name().to_string(),
                    pool: candidate.clone(),
                });
                candidate
            }
        };
        tuning.shard_pool = Some(pool);
    }
    let model_chunks = checkpoint.side_state.model_chunks();
    let side_state_tags: Vec<String> = model_chunks.tags().map(String::from).collect();
    let retained = checkpoint.clone();
    let server = PredictServer::start_tuned(batching.clone(), tuning, move |_| {
        session_from_checkpoint(&retained).expect("checkpoint probed above")
    })?;
    Ok(TenantModel::new(server, version, side_state_tags))
}
