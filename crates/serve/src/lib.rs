//! # dtdbd-serve
//!
//! The deployment subsystem of the DTDBD reproduction: everything needed to
//! take a student trained by `dtdbd-core` and answer prediction traffic with
//! it. Five layers, each usable on its own:
//!
//! 1. **Checkpointing** ([`checkpoint`]) — a dependency-free, versioned
//!    binary codec (format 2) that persists a [`dtdbd_tensor::ParamStore`]
//!    together with its [`dtdbd_models::ModelConfig`], vocabulary layout and
//!    the model's [`dtdbd_models::SideState`] (trained state outside the
//!    store, e.g. M3FEND's domain memory bank) as individually CRC-guarded
//!    chunks — CRC-32 corruption detection everywhere, bit-exact `f32`
//!    round trips, and version-1 files still load.
//! 2. **Tape-free inference** ([`session`]) — [`InferenceSession`] runs
//!    forward passes on [`dtdbd_tensor::Graph::inference`] graphs: no
//!    autograd tape, and after the first request every activation buffer is
//!    recycled through a [`dtdbd_tensor::BufferPool`], so the steady-state
//!    hot path performs no activation allocation.
//! 3. **Micro-batching server core** ([`server`]) — [`PredictServer`]
//!    coalesces concurrent single-item requests into batches
//!    (`max_batch_size` / `max_wait`) dispatched to a pool of worker
//!    threads, each owning a private session. Scaling features configured
//!    through [`ServerBuilder`]: a lock-sharded prediction cache
//!    ([`cache`]), **embedding sharding** ([`shards`]: the dominant frozen
//!    table held once process-wide instead of per worker, bit-identical
//!    predictions) and **domain routing** ([`routing`]: per-domain
//!    specialist queues with a shared fallback).
//! 4. **Multi-model zoo** ([`zoo`]) — [`ModelZoo`] keeps several resident
//!    models keyed by id (each with its own worker group, queues, cache and
//!    supervision), dedups byte-identical frozen shard pools across tenants
//!    by content digest, and hot-swaps a file-backed tenant to a new
//!    checkpoint version without dropping or mis-versioning a single
//!    request (build beside, warm, `Arc` flip at a batch boundary, drain,
//!    retire).
//! 5. **HTTP/1.1 front-end** ([`http`], with its JSON codec in [`json`]) —
//!    [`HttpServer`] binds a `TcpListener` and serves `POST /predict`
//!    (per-tenant: `POST /predict/<id>`), `GET /model`, `GET /healthz` and
//!    `GET /stats` over real sockets: a bounded connection-worker pool,
//!    incremental request parsing with hard head/body limits, keep-alive,
//!    and JSON whose `f32` round trips are bit-exact. See the [`http`]
//!    module docs for the full wire protocol.
//!
//! The typical round trip:
//!
//! ```text
//! train (dtdbd-core)            serve (this crate)
//! ------------------            -------------------------------------------
//! train_model(&mut m, ...)  →   Checkpoint::capture(&m, &store)
//!                                   .save("student.dtdbd")
//!                               ...fresh process...
//!                               let ckpt = Checkpoint::load("student.dtdbd")?;
//!                               let server = PredictServer::start(cfg, |_|
//!                                   session_from_checkpoint(&ckpt).unwrap());
//!                               server.predict(&request)?.fake_prob
//! ```

pub mod builder;
pub mod cache;
pub mod checkpoint;
pub mod fault;
pub mod http;
pub mod json;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod poll;
pub mod prom;
pub mod routing;
pub mod server;
pub mod session;
pub mod shards;
pub mod telemetry;
pub mod timer;
pub mod zoo;

/// The little-endian byte codec behind the checkpoint format. It moved to
/// `dtdbd-models` (models encode their own side-state chunks with it) and is
/// re-exported here so `dtdbd_serve::codec` paths keep working.
pub use dtdbd_models::codec;

pub use builder::{
    build_model, session_from_checkpoint, BoxedModel, ConfigError, ServerBuilder, StartError,
    SUPPORTED_ARCHS,
};
pub use cache::{CacheKey, CacheStats, PredictionCache, ShardedPredictionCache};
pub use checkpoint::{Checkpoint, CheckpointError, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION};
pub use dtdbd_models::{SideState, SideStateError};
pub use dtdbd_tensor::Precision;
pub use fault::{FaultParseError, FaultPlan};
pub use http::{ClientResponse, ConnectionModel, HttpClient, HttpConfig, HttpServer};
pub use routing::DomainRouting;
pub use server::{
    BatchingConfig, PredictError, PredictServer, PredictionHandle, RoutingStats, ServingStats,
};
pub use session::{InferenceSession, Prediction};
pub use shards::ShardStore;
pub use telemetry::{
    DomainBaseline, DomainDrift, DriftTracker, HistogramSnapshot, LatencyHistogram, Stage,
    Telemetry, TelemetrySnapshot, TraceContext, BASELINE_TAG,
};
pub use zoo::{ModelZoo, ReloadError, Tenant, TenantModel, DEFAULT_MODEL_ID};
