//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a seeded, declarative description of the faults a
//! server run should suffer: worker panics on the Nth batch, artificially
//! slow forward passes, queue stalls, and NaN-poisoned predictions. Plans
//! are injected through `ServerBuilder::fault_plan` (or the `DTDBD_FAULTS`
//! environment variable for the bench binaries) and compiled once at server
//! start into per-worker [`WorkerFaults`] tables; a server started without a
//! plan carries `None` and the hot path never consults the subsystem at all.
//!
//! Determinism is the point: the chaos battery replays the *same* worker
//! kills at the *same* batch ordinals on every run, so "the server healed
//! and answered bit-exactly" is a reproducible assertion, not a flake.
//!
//! # Grammar
//!
//! A plan is a `;`- or `,`-separated list of entries (spaces allowed):
//!
//! | entry         | meaning                                                          |
//! |---------------|------------------------------------------------------------------|
//! | `seed=S`      | PRNG seed for the seeded selectors below (default 0)             |
//! | `panic=W@B`   | worker `W` panics when it picks up its `B`th batch (1-based)     |
//! | `kill=K@B`    | `K` seed-chosen distinct workers each panic at their `B`th batch |
//! | `nan=W@B`     | worker `W` poisons its `B`th batch's predictions with NaN        |
//! | `slow=Dms`    | every forward pass sleeps `D` milliseconds first                 |
//! | `stall=Dms`   | every batch assembly holds the queue lock `D` ms extra           |
//! | `backoff=Dms` | overrides the supervisor's initial respawn backoff               |
//!
//! Example: `seed=42;kill=3@5;slow=2ms` — three workers picked by seed 42
//! panic on their fifth batch, and every forward pass is 2 ms slower.
//!
//! Batch ordinals count over a worker's whole lifetime (respawns do not
//! reset them), so a `panic=W@B` entry fires exactly once.

use dtdbd_tensor::rng::Prng;
use std::time::Duration;

/// A seeded, deterministic description of the faults to inject into a
/// serving run. Build one with the fluent methods or parse the grammar in
/// the [module docs](self) with [`FaultPlan::parse`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    panics: Vec<(usize, u64)>,
    nans: Vec<(usize, u64)>,
    kills: Vec<(usize, u64)>,
    slow: Option<Duration>,
    stall: Option<Duration>,
    backoff: Option<Duration>,
}

impl FaultPlan {
    /// An empty plan with the given seed for the seeded selectors
    /// (`kill=K@B` picks its victims with it).
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Worker `worker` panics when it picks up its `batch`th batch
    /// (1-based, counted over the worker's lifetime across respawns).
    pub fn panic_worker(mut self, worker: usize, batch: u64) -> Self {
        self.panics.push((worker, batch));
        self
    }

    /// `count` distinct workers — chosen by the plan's seed at compile
    /// time — each panic when picking up their `batch`th batch.
    pub fn kill_workers(mut self, count: usize, batch: u64) -> Self {
        self.kills.push((count, batch));
        self
    }

    /// Worker `worker` overwrites its `batch`th batch's predictions with
    /// NaN (exercises the non-finite drift counters downstream).
    pub fn nan_worker(mut self, worker: usize, batch: u64) -> Self {
        self.nans.push((worker, batch));
        self
    }

    /// Every forward pass sleeps this long before running.
    pub fn slow_predict(mut self, delay: Duration) -> Self {
        self.slow = Some(delay);
        self
    }

    /// Every batch assembly holds the queue lock this long extra.
    pub fn queue_stall(mut self, delay: Duration) -> Self {
        self.stall = Some(delay);
        self
    }

    /// Override the supervisor's initial respawn backoff (tests use a large
    /// value to hold a worker down long enough to observe `/readyz` 503).
    pub fn respawn_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// The supervisor backoff override, if any.
    pub(crate) fn backoff_override(&self) -> Option<Duration> {
        self.backoff
    }

    /// Parse the grammar described in the [module docs](self).
    pub fn parse(text: &str) -> Result<Self, FaultParseError> {
        let mut plan = Self::default();
        for entry in text
            .split([';', ','])
            .map(str::trim)
            .filter(|e| !e.is_empty())
        {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| FaultParseError::new(entry, "expected key=value"))?;
            match key.trim() {
                "seed" => plan.seed = parse_u64(entry, value)?,
                "panic" => plan.panics.push(parse_at(entry, value)?),
                "kill" => plan.kills.push(parse_at(entry, value)?),
                "nan" => plan.nans.push(parse_at(entry, value)?),
                "slow" => plan.slow = Some(parse_ms(entry, value)?),
                "stall" => plan.stall = Some(parse_ms(entry, value)?),
                "backoff" => plan.backoff = Some(parse_ms(entry, value)?),
                other => {
                    return Err(FaultParseError::new(
                        entry,
                        &format!("unknown fault kind {other:?}"),
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Read a plan from the `DTDBD_FAULTS` environment variable. Unset or
    /// empty means no plan (`Ok(None)`); set but malformed is an error so a
    /// typo'd chaos run fails loudly instead of running fault-free.
    pub fn from_env() -> Result<Option<Self>, FaultParseError> {
        match std::env::var("DTDBD_FAULTS") {
            Ok(text) if !text.trim().is_empty() => Self::parse(&text).map(Some),
            _ => Ok(None),
        }
    }

    /// True when the plan injects nothing (a parsed empty string).
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.nans.is_empty()
            && self.kills.is_empty()
            && self.slow.is_none()
            && self.stall.is_none()
            && self.backoff.is_none()
    }

    /// Compile the plan into one fault table per worker. Seeded `kill`
    /// entries resolve to concrete worker indices here — deterministically,
    /// from the plan's seed — so every run of the same plan on the same
    /// worker count kills the same workers. Out-of-range explicit worker
    /// indices are ignored (a 2-worker deployment of a `panic=7@1` plan
    /// simply never fires it).
    pub(crate) fn compile(&self, workers: usize) -> Vec<WorkerFaults> {
        let mut faults = vec![WorkerFaults::default(); workers];
        for &(worker, batch) in &self.panics {
            if let Some(f) = faults.get_mut(worker) {
                f.panic_on.push(batch);
            }
        }
        for &(worker, batch) in &self.nans {
            if let Some(f) = faults.get_mut(worker) {
                f.nan_on.push(batch);
            }
        }
        let mut rng = Prng::new(self.seed).fork(0xFA17);
        for &(count, batch) in &self.kills {
            let mut victims: Vec<usize> = (0..workers).collect();
            rng.shuffle(&mut victims);
            for &worker in victims.iter().take(count) {
                faults[worker].panic_on.push(batch);
            }
        }
        for f in &mut faults {
            f.slow = self.slow;
            f.stall = self.stall;
            f.panic_on.sort_unstable();
            f.panic_on.dedup();
            f.nan_on.sort_unstable();
            f.nan_on.dedup();
        }
        faults
    }
}

fn parse_u64(entry: &str, value: &str) -> Result<u64, FaultParseError> {
    value
        .trim()
        .parse()
        .map_err(|_| FaultParseError::new(entry, "expected an unsigned integer"))
}

/// `W@B` — a worker (or count) paired with a 1-based batch ordinal.
fn parse_at(entry: &str, value: &str) -> Result<(usize, u64), FaultParseError> {
    let (worker, batch) = value
        .split_once('@')
        .ok_or_else(|| FaultParseError::new(entry, "expected W@B"))?;
    let worker = worker
        .trim()
        .parse()
        .map_err(|_| FaultParseError::new(entry, "bad worker index"))?;
    let batch: u64 = batch
        .trim()
        .parse()
        .map_err(|_| FaultParseError::new(entry, "bad batch ordinal"))?;
    if batch == 0 {
        return Err(FaultParseError::new(entry, "batch ordinals are 1-based"));
    }
    Ok((worker, batch))
}

/// `Dms` (or a bare integer, also milliseconds).
fn parse_ms(entry: &str, value: &str) -> Result<Duration, FaultParseError> {
    let digits = value.trim().trim_end_matches("ms").trim();
    let ms: u64 = digits
        .parse()
        .map_err(|_| FaultParseError::new(entry, "expected a duration like 250ms"))?;
    Ok(Duration::from_millis(ms))
}

/// A malformed `DTDBD_FAULTS` / [`FaultPlan::parse`] entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    entry: String,
    reason: String,
}

impl FaultParseError {
    fn new(entry: &str, reason: &str) -> Self {
        Self {
            entry: entry.to_string(),
            reason: reason.to_string(),
        }
    }
}

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault entry {:?}: {}", self.entry, self.reason)
    }
}

impl std::error::Error for FaultParseError {}

/// One worker's compiled fault table. `Default` (all empty) injects
/// nothing; the worker loop only consults it through an `Option`, so a
/// server without a plan pays nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerFaults {
    /// 1-based lifetime batch ordinals at which this worker panics.
    pub panic_on: Vec<u64>,
    /// 1-based lifetime batch ordinals whose predictions get NaN-poisoned.
    pub nan_on: Vec<u64>,
    /// Sleep before every forward pass.
    pub slow: Option<Duration>,
    /// Extra time the queue lock is held during every batch assembly.
    pub stall: Option<Duration>,
}

impl WorkerFaults {
    pub(crate) fn is_empty(&self) -> bool {
        self.panic_on.is_empty()
            && self.nan_on.is_empty()
            && self.slow.is_none()
            && self.stall.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_every_entry_kind() {
        let plan = FaultPlan::parse(
            "seed=42; panic=0@3, kill=3@5; nan=1@2; slow=2ms, stall=1ms; backoff=250ms",
        )
        .unwrap();
        assert_eq!(
            plan,
            FaultPlan::seeded(42)
                .panic_worker(0, 3)
                .kill_workers(3, 5)
                .nan_worker(1, 2)
                .slow_predict(Duration::from_millis(2))
                .queue_stall(Duration::from_millis(1))
                .respawn_backoff(Duration::from_millis(250))
        );
        assert_eq!(plan.backoff_override(), Some(Duration::from_millis(250)));
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; , ").unwrap().is_empty());
    }

    #[test]
    fn malformed_entries_are_typed_errors() {
        for bad in [
            "panic",          // no value
            "panic=3",        // missing @B
            "panic=x@1",      // bad worker
            "panic=1@x",      // bad ordinal
            "panic=1@0",      // ordinals are 1-based
            "slow=fast",      // bad duration
            "warp=1@1",       // unknown kind
            "seed=minus-one", // bad seed
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.to_string().contains("bad fault entry"), "{bad}: {err}");
        }
    }

    #[test]
    fn seeded_kills_compile_deterministically_to_distinct_workers() {
        let plan = FaultPlan::seeded(42).kill_workers(3, 5);
        let a = plan.compile(8);
        let b = plan.compile(8);
        let victims = |faults: &[WorkerFaults]| {
            faults
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.panic_on.is_empty())
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        assert_eq!(victims(&a), victims(&b), "same seed must pick same victims");
        assert_eq!(victims(&a).len(), 3, "three distinct victims");
        for f in &a {
            assert!(f.panic_on.len() <= 1);
            assert_eq!(f.panic_on.first().copied().unwrap_or(5), 5);
        }
        // A different seed is allowed to (and for 3-of-8 usually does)
        // pick a different set — but must still pick exactly three.
        assert_eq!(
            victims(&FaultPlan::seeded(7).kill_workers(3, 5).compile(8)).len(),
            3
        );
    }

    #[test]
    fn compile_ignores_out_of_range_workers_and_dedups_ordinals() {
        let plan = FaultPlan::default()
            .panic_worker(7, 1)
            .panic_worker(0, 2)
            .panic_worker(0, 2)
            .nan_worker(9, 1);
        let faults = plan.compile(2);
        assert_eq!(faults[0].panic_on, vec![2]);
        assert!(faults[1].is_empty());
        // kill=K@B with K > workers kills everyone, once each.
        let all = FaultPlan::seeded(1).kill_workers(10, 1).compile(3);
        assert!(all.iter().all(|f| f.panic_on == vec![1]));
    }

    #[test]
    fn env_parsing_distinguishes_unset_empty_and_malformed() {
        // Serialize env mutation within this test only; other tests in this
        // module never touch the variable.
        std::env::remove_var("DTDBD_FAULTS");
        assert_eq!(FaultPlan::from_env().unwrap(), None);
        std::env::set_var("DTDBD_FAULTS", "  ");
        assert_eq!(FaultPlan::from_env().unwrap(), None);
        std::env::set_var("DTDBD_FAULTS", "kill=2@3");
        assert_eq!(
            FaultPlan::from_env().unwrap(),
            Some(FaultPlan::default().kill_workers(2, 3))
        );
        std::env::set_var("DTDBD_FAULTS", "bogus");
        assert!(FaultPlan::from_env().is_err());
        std::env::remove_var("DTDBD_FAULTS");
    }
}
