//! Versioned model checkpoints: `ParamStore` + `ModelConfig` + `Vocabulary`
//! + model [`SideState`].
//!
//! # File format (version 2)
//!
//! ```text
//! offset    size  field
//! 0         4     magic  b"DTDB"
//! 4         4     format version (u32 LE): 2 written, 1..=2 read
//! 8         8     payload length P in bytes (u64 LE)
//! 16        4     CRC-32 of the payload (u32 LE)
//! 20        P     payload (identical encoding to version 1)
//! 20+P      4     side-state chunk count N (u32 LE)        ── v2 only ──
//! ...             N chunks, each:
//!                   u64 LE  tag length T, then T bytes of UTF-8 tag
//!                   u64 LE  chunk body length L
//!                   u32 LE  CRC-32 of (tag bytes ‖ chunk body)
//!                   L bytes chunk body (opaque to this container)
//! ```
//!
//! The payload is, in order: the architecture tag (the constructor the loader
//! must use to rebuild the model), the full [`ModelConfig`] including the
//! vocabulary layout, and every parameter of the [`ParamStore`] (name,
//! trainable flag, shape, and the raw IEEE-754 bit patterns of the values).
//! Gradients are transient optimizer state and are not persisted; a loaded
//! store starts with zero gradients.
//!
//! The **side-state section** carries trained state that lives outside the
//! `ParamStore` (M3FEND's domain memory bank is the canonical example) as
//! tagged opaque chunks, each individually length-prefixed and CRC-32
//! guarded — the header CRC covers only the payload, so every chunk defends
//! itself. Chunk bodies are produced and consumed by the model
//! ([`dtdbd_models::FakeNewsModel::export_side_state`] /
//! `import_side_state`); the container rejects duplicated tags
//! ([`CheckpointError::DuplicateChunk`]) and forged chunk bodies
//! ([`CheckpointError::ChunkCorrupted`]) itself, while tags the rebuilt
//! architecture does not understand fail at import time
//! ([`CheckpointError::SideState`]) — never silently dropped.
//!
//! **Version 1 files still load**: a v1 file is exactly the v2 layout with
//! the side-state section absent (reading one yields an empty
//! [`SideState`]), and a v2 file with zero chunks differs from its v1
//! counterpart only by the four-byte chunk count. The writer always emits
//! version 2.
//!
//! The header makes the outer failure modes loud before any tensor is
//! built: a truncated file fails the payload-length check and a corrupted
//! payload fails the CRC, both with dedicated error variants.

use crate::codec::{crc32, ByteReader, ByteWriter, CodecError};
use crate::telemetry::{DomainBaseline, BASELINE_TAG};
use dtdbd_data::Vocabulary;
use dtdbd_models::{FakeNewsModel, ModelConfig, SideState, SideStateError};
use dtdbd_tensor::{ParamStore, Tensor};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// File magic, `b"DTDB"`.
pub const MAGIC: [u8; 4] = *b"DTDB";
/// Checkpoint format version this build writes.
pub const FORMAT_VERSION: u32 = 2;
/// Oldest checkpoint format version this build still reads.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Why a checkpoint failed to save or load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The file is shorter than its header promises.
    Truncated {
        /// Payload bytes promised by the header.
        expected: u64,
        /// Payload bytes actually present.
        found: u64,
    },
    /// The payload's CRC-32 does not match the header.
    Corrupted {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the bytes on disk.
        found: u32,
    },
    /// A side-state chunk's CRC-32 does not match its recorded value (the
    /// header CRC covers only the payload; each chunk defends itself).
    ChunkCorrupted {
        /// Tag of the offending chunk.
        tag: String,
        /// CRC recorded with the chunk.
        expected: u32,
        /// CRC of the chunk bytes on disk.
        found: u32,
    },
    /// Two side-state chunks carry the same tag.
    DuplicateChunk {
        /// The repeated tag.
        tag: String,
    },
    /// The side state decoded structurally but the rebuilt model refused it
    /// (unknown tag, missing required chunk, or malformed chunk body).
    SideState(SideStateError),
    /// The payload decoded but its structure is invalid.
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::BadMagic => write!(f, "not a DTDBD checkpoint (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint format version {v} \
                     (supported: {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            Self::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated checkpoint: header promises {expected} payload bytes, found {found}"
                )
            }
            Self::Corrupted { expected, found } => {
                write!(
                    f,
                    "corrupted checkpoint: CRC {found:#010x}, header says {expected:#010x}"
                )
            }
            Self::ChunkCorrupted {
                tag,
                expected,
                found,
            } => {
                write!(
                    f,
                    "corrupted side-state chunk {tag:?}: CRC {found:#010x}, chunk header says {expected:#010x}"
                )
            }
            Self::DuplicateChunk { tag } => {
                write!(f, "duplicate side-state chunk tag {tag:?}")
            }
            Self::SideState(e) => write!(f, "checkpoint side state rejected: {e}"),
            Self::Malformed(msg) => write!(f, "malformed checkpoint payload: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::SideState(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        Self::Malformed(e.to_string())
    }
}

impl From<SideStateError> for CheckpointError {
    fn from(e: SideStateError) -> Self {
        Self::SideState(e)
    }
}

/// A fully decoded checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Architecture tag naming the constructor that rebuilds the model
    /// (e.g. `"TextCNN-S"`).
    pub arch: String,
    /// The model's configuration, including the vocabulary layout.
    pub config: ModelConfig,
    /// The model's parameters (gradients reset to zero).
    pub params: ParamStore,
    /// Trained state outside the `ParamStore`, as tagged opaque chunks
    /// (empty for purely parametric models and for version-1 files).
    pub side_state: SideState,
}

impl Checkpoint {
    /// Assemble a checkpoint from live training state, with no side-state
    /// section. For models that carry state outside the store (M3FEND),
    /// use [`Checkpoint::capture`], which asks the model itself.
    pub fn new(arch: impl Into<String>, config: &ModelConfig, params: &ParamStore) -> Self {
        Self {
            arch: arch.into(),
            config: config.clone(),
            params: params.clone(),
            side_state: SideState::new(),
        }
    }

    /// Capture everything a faithful restore needs from a live model: the
    /// architecture tag, the configuration, the parameters, *and* the
    /// model's exported [`SideState`]. This is the save half of the full
    /// train → save → load → serve loop; prefer it over
    /// [`Checkpoint::new`] whenever the model instance is at hand.
    pub fn capture<M: FakeNewsModel + ?Sized>(model: &M, params: &ParamStore) -> Self {
        Self {
            arch: model.name().to_string(),
            config: model.config().clone(),
            params: params.clone(),
            side_state: model.export_side_state(),
        }
    }

    /// Serialize to bytes (header + payload + side-state section).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.str(&self.arch);
        encode_config(&mut payload, &self.config);
        encode_params(&mut payload, &self.params);
        let payload = payload.into_bytes();

        let mut out = ByteWriter::new();
        out.bytes(&MAGIC);
        out.u32(FORMAT_VERSION);
        out.u64(payload.len() as u64);
        out.u32(crc32(&payload));
        out.bytes(&payload);
        out.u32(self.side_state.len() as u32);
        for (tag, chunk) in self.side_state.iter() {
            out.str(tag);
            out.u64(chunk.len() as u64);
            out.u32(chunk_crc(tag, chunk));
            out.bytes(chunk);
        }
        out.into_bytes()
    }

    /// Decode from bytes, verifying magic, version, length, the payload CRC
    /// and (version ≥ 2) every side-state chunk's own length and CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.bytes(4).map_err(|_| CheckpointError::BadMagic)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r
            .u32()
            .map_err(|_| CheckpointError::UnsupportedVersion(0))?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let declared_len = r.u64().map_err(|_| CheckpointError::Truncated {
            expected: 0,
            found: 0,
        })?;
        let declared_crc = r.u32().map_err(|_| CheckpointError::Truncated {
            expected: declared_len,
            found: 0,
        })?;
        if (r.remaining() as u64) < declared_len {
            return Err(CheckpointError::Truncated {
                expected: declared_len,
                found: r.remaining() as u64,
            });
        }
        if version == 1 && (r.remaining() as u64) > declared_len {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after the payload",
                r.remaining() as u64 - declared_len
            )));
        }
        let payload = r.bytes(declared_len as usize)?;
        let found_crc = crc32(payload);
        if found_crc != declared_crc {
            return Err(CheckpointError::Corrupted {
                expected: declared_crc,
                found: found_crc,
            });
        }

        let side_state = if version >= 2 {
            decode_side_state(&mut r)?
        } else {
            SideState::new()
        };
        if !r.is_exhausted() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after the side-state section",
                r.remaining()
            )));
        }

        let mut p = ByteReader::new(payload);
        let arch = p.str()?;
        let config = decode_config(&mut p)?;
        let params = decode_params(&mut p)?;
        if !p.is_exhausted() {
            return Err(CheckpointError::Malformed(format!(
                "{} undecoded payload bytes",
                p.remaining()
            )));
        }
        Ok(Self {
            arch,
            config,
            params,
            side_state,
        })
    }

    /// Write the checkpoint to a file (atomically: a temp file in the same
    /// directory is written first and then renamed over the target).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp-dtdbd");
        fs::write(&tmp, self.to_bytes())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and verify a checkpoint from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let bytes = fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Attach (or replace) the training-time drift baseline this checkpoint
    /// carries in its [`BASELINE_TAG`] side-state chunk. The chunk lives in
    /// the `telemetry.` container namespace: it travels with the model's
    /// own side state but is stripped before `import_side_state`, so models
    /// never see it. [`crate::ServerBuilder::try_start_from_checkpoint`]
    /// wires it into the serving drift tracker automatically.
    pub fn set_telemetry_baseline(&mut self, baseline: &DomainBaseline) {
        self.side_state.remove(BASELINE_TAG);
        self.side_state
            .insert(BASELINE_TAG, baseline.to_bytes())
            .expect("tag is non-empty and was just removed");
    }

    /// Decode the checkpoint's drift baseline, if it carries one. A present
    /// but undecodable chunk is a typed
    /// [`CheckpointError::SideState`] (malformed), never silently `None`.
    pub fn telemetry_baseline(&self) -> Result<Option<DomainBaseline>, CheckpointError> {
        match self.side_state.get(BASELINE_TAG) {
            None => Ok(None),
            Some(bytes) => DomainBaseline::from_bytes(bytes)
                .map(Some)
                .map_err(|detail| {
                    CheckpointError::SideState(SideStateError::Malformed {
                        tag: BASELINE_TAG.to_string(),
                        detail,
                    })
                }),
        }
    }

    /// Copy this checkpoint's parameter values into a freshly built model's
    /// store, verifying that the layouts (names and shapes, in registration
    /// order) agree. This is the restore half of the save→build→restore
    /// loading protocol: the loader reconstructs the architecture from
    /// [`Checkpoint::arch`] and [`Checkpoint::config`], which registers
    /// randomly initialised parameters, then overwrites them here.
    pub fn restore_into(&self, store: &mut ParamStore) -> Result<(), CheckpointError> {
        if store.len() != self.params.len() {
            return Err(CheckpointError::Malformed(format!(
                "parameter count mismatch: model registers {}, checkpoint holds {}",
                store.len(),
                self.params.len()
            )));
        }
        for ((_, live), (_, saved)) in store.iter().zip(self.params.iter()) {
            if live.name != saved.name || live.value.shape() != saved.value.shape() {
                return Err(CheckpointError::Malformed(format!(
                    "parameter layout mismatch: model has {} {:?}, checkpoint has {} {:?}",
                    live.name,
                    live.value.shape(),
                    saved.name,
                    saved.value.shape()
                )));
            }
        }
        store.copy_values_from(&self.params);
        Ok(())
    }
}

/// CRC-32 over a chunk's tag bytes and body together: the header CRC does
/// not reach the side-state section, so each chunk guards both its identity
/// (the tag) and its contents itself.
fn chunk_crc(tag: &str, body: &[u8]) -> u32 {
    crate::codec::crc32_of_parts(&[tag.as_bytes(), body])
}

/// Decode the version-2 side-state section: a `u32` chunk count followed by
/// `count` chunks, each a tag string + `u64` body length + `u32` CRC of
/// (tag ‖ body) + body bytes. Structural damage (truncation, bad tag,
/// oversized length) maps to [`CheckpointError::Malformed`] via the codec's
/// typed errors; a chunk whose CRC disagrees is
/// [`CheckpointError::ChunkCorrupted`] and a repeated tag is
/// [`CheckpointError::DuplicateChunk`].
fn decode_side_state(r: &mut ByteReader<'_>) -> Result<SideState, CheckpointError> {
    let count = r.u32().map_err(|_| {
        CheckpointError::Malformed("side-state section missing its chunk count".to_string())
    })?;
    let mut side_state = SideState::new();
    for index in 0..count {
        let chunk_err = |e: CodecError| {
            CheckpointError::Malformed(format!("side-state chunk {index} of {count}: {e}"))
        };
        let tag = r.str().map_err(chunk_err)?;
        let len = r.u64().map_err(chunk_err)?;
        let declared_crc = r.u32().map_err(chunk_err)?;
        if len > r.remaining() as u64 {
            return Err(CheckpointError::Malformed(format!(
                "side-state chunk {tag:?} declares {len} bytes, {} remain",
                r.remaining()
            )));
        }
        let body = r.bytes(len as usize).map_err(chunk_err)?;
        let found_crc = chunk_crc(&tag, body);
        if found_crc != declared_crc {
            return Err(CheckpointError::ChunkCorrupted {
                tag,
                expected: declared_crc,
                found: found_crc,
            });
        }
        side_state
            .insert(&tag, body.to_vec())
            .map_err(|e| match e {
                SideStateError::DuplicateTag { tag } => CheckpointError::DuplicateChunk { tag },
                other => CheckpointError::SideState(other),
            })?;
    }
    Ok(side_state)
}

fn encode_vocab(w: &mut ByteWriter, vocab: &Vocabulary) {
    w.u64(vocab.n_domains() as u64);
    w.u64(vocab.n_topic_groups() as u64);
    w.u64(vocab.shared_cues_per_class() as u64);
    w.u64(vocab.domain_cues_per_class() as u64);
    w.u64(vocab.topic_tokens_per_group() as u64);
    w.u64(vocab.noise_tokens() as u64);
}

fn decode_vocab(r: &mut ByteReader<'_>) -> Result<Vocabulary, CheckpointError> {
    Ok(Vocabulary::from_parts(
        r.u64()? as usize,
        r.u64()? as usize,
        r.u64()? as usize,
        r.u64()? as usize,
        r.u64()? as usize,
        r.u64()? as usize,
    ))
}

fn encode_config(w: &mut ByteWriter, config: &ModelConfig) {
    encode_vocab(w, &config.vocab);
    w.u64(config.vocab_size as u64);
    w.u64(config.seq_len as u64);
    w.u64(config.n_domains as u64);
    w.u64(config.emb_dim as u64);
    w.u64(config.hidden as u64);
    w.u64(config.feature_dim as u64);
    w.f32(config.dropout);
    w.u64(config.emb_seed);
    w.u64(config.style_dim as u64);
    w.u64(config.emotion_dim as u64);
    w.u64(config.n_experts as u64);
}

fn decode_config(r: &mut ByteReader<'_>) -> Result<ModelConfig, CheckpointError> {
    let vocab = decode_vocab(r)?;
    Ok(ModelConfig {
        vocab,
        vocab_size: r.u64()? as usize,
        seq_len: r.u64()? as usize,
        n_domains: r.u64()? as usize,
        emb_dim: r.u64()? as usize,
        hidden: r.u64()? as usize,
        feature_dim: r.u64()? as usize,
        dropout: r.f32()?,
        emb_seed: r.u64()?,
        style_dim: r.u64()? as usize,
        emotion_dim: r.u64()? as usize,
        n_experts: r.u64()? as usize,
    })
}

fn encode_params(w: &mut ByteWriter, params: &ParamStore) {
    w.u64(params.len() as u64);
    for (_, param) in params.iter() {
        w.str(&param.name);
        w.u8(u8::from(param.trainable));
        w.u64(param.value.ndim() as u64);
        for &dim in param.value.shape() {
            w.u64(dim as u64);
        }
        w.f32_slice(param.value.data());
    }
}

fn decode_params(r: &mut ByteReader<'_>) -> Result<ParamStore, CheckpointError> {
    let count = r.u64()?;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name = r.str()?;
        let trainable = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "parameter {name}: invalid trainable flag {other}"
                )))
            }
        };
        let ndim = r.u64()? as usize;
        if ndim > 8 {
            return Err(CheckpointError::Malformed(format!(
                "parameter {name}: implausible rank {ndim}"
            )));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(r.u64()? as usize);
        }
        let data = r.f32_values()?;
        // Checked product: corrupted dims must map to a typed error, not an
        // overflow panic.
        let expected: usize = shape
            .iter()
            .try_fold(1usize, |acc, &dim| acc.checked_mul(dim))
            .ok_or_else(|| {
                CheckpointError::Malformed(format!(
                    "parameter {name}: shape {shape:?} overflows the element count"
                ))
            })?;
        if data.len() != expected {
            return Err(CheckpointError::Malformed(format!(
                "parameter {name}: shape {shape:?} needs {expected} values, payload has {}",
                data.len()
            )));
        }
        let value = Tensor::new(shape, data);
        if trainable {
            store.add(name, value);
        } else {
            store.add_frozen(name, value);
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_data::{weibo21_spec, GeneratorConfig, NewsGenerator};

    fn tiny_config() -> ModelConfig {
        let ds =
            NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny()).generate_scaled(1, 0.01);
        ModelConfig::tiny(&ds)
    }

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.add(
            "layer.weight",
            Tensor::from_rows(&[vec![1.5, -2.25], vec![0.0, -0.0]]),
        );
        store.add_frozen(
            "emb.table",
            Tensor::from_vec(vec![f32::MIN_POSITIVE, 3.0e38]),
        );
        store
    }

    #[test]
    fn byte_round_trip_preserves_everything() {
        let config = tiny_config();
        let store = sample_store();
        let ckpt = Checkpoint::new("TextCNN-S", &config, &store);
        let decoded = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(decoded.arch, "TextCNN-S");
        assert_eq!(decoded.config.seq_len, config.seq_len);
        assert_eq!(decoded.config.emb_seed, config.emb_seed);
        assert_eq!(decoded.config.vocab.size(), config.vocab.size());
        assert_eq!(decoded.params.len(), 2);
        assert!(decoded.side_state.is_empty());
        let (_, w) = decoded.params.iter().next().unwrap();
        assert_eq!(w.name, "layer.weight");
        assert!(w.trainable);
        // Bit-exact, including the negative zero.
        assert_eq!(w.value.data()[3].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn side_state_chunks_round_trip_in_order() {
        let mut ckpt = Checkpoint::new("M3FEND", &tiny_config(), &sample_store());
        ckpt.side_state
            .insert("m3fend.memory", vec![0xAA, 0x00, 0xFF, 0x55])
            .unwrap();
        ckpt.side_state.insert("aux.extra", Vec::new()).unwrap();
        let decoded = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(decoded.side_state.len(), 2);
        assert_eq!(
            decoded.side_state.get("m3fend.memory"),
            Some(&[0xAA, 0x00, 0xFF, 0x55][..])
        );
        assert_eq!(decoded.side_state.get("aux.extra"), Some(&[][..]));
        let tags: Vec<&str> = decoded.side_state.tags().collect();
        assert_eq!(tags, ["m3fend.memory", "aux.extra"], "order preserved");
        // And the re-serialization is byte-stable.
        assert_eq!(decoded.to_bytes(), ckpt.to_bytes());
    }

    /// Rebuild a version-1 byte stream for a checkpoint: identical payload,
    /// version field 1, no side-state section.
    fn v1_bytes(ckpt: &Checkpoint) -> Vec<u8> {
        assert!(ckpt.side_state.is_empty(), "v1 cannot carry side state");
        let v2 = ckpt.to_bytes();
        let payload_len = u64::from_le_bytes(v2[8..16].try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(20 + payload_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&v2[8..20 + payload_len]);
        out
    }

    #[test]
    fn version_1_files_still_load_with_empty_side_state() {
        let ckpt = Checkpoint::new("TextCNN-S", &tiny_config(), &sample_store());
        let v1 = v1_bytes(&ckpt);
        assert_eq!(
            v1.len() + 4,
            ckpt.to_bytes().len(),
            "v2 adds only the count"
        );
        let decoded = Checkpoint::from_bytes(&v1).unwrap();
        assert_eq!(decoded.arch, ckpt.arch);
        assert!(decoded.side_state.is_empty());
        for ((_, a), (_, b)) in decoded.params.iter().zip(ckpt.params.iter()) {
            assert_eq!(a.name, b.name);
            for (x, y) in a.value.data().iter().zip(b.value.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // v1 keeps its strict no-trailing-bytes rule.
        let mut grown = v1;
        grown.push(0);
        assert!(matches!(
            Checkpoint::from_bytes(&grown),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn chunk_crc_flips_and_duplicate_tags_are_typed_errors() {
        let mut ckpt = Checkpoint::new("M3FEND", &tiny_config(), &sample_store());
        ckpt.side_state
            .insert("m3fend.memory", vec![1, 2, 3, 4, 5, 6, 7, 8])
            .unwrap();
        let bytes = ckpt.to_bytes();

        // Flip a bit inside the chunk body (the last 8 bytes of the file).
        let mut corrupt = bytes.clone();
        let n = corrupt.len();
        corrupt[n - 3] ^= 0x20;
        assert!(matches!(
            Checkpoint::from_bytes(&corrupt),
            Err(CheckpointError::ChunkCorrupted { ref tag, .. }) if tag == "m3fend.memory"
        ));

        // A duplicated tag (chunk appended verbatim, count bumped).
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let section_start = 20 + payload_len;
        let chunk = bytes[section_start + 4..].to_vec();
        let mut dup = bytes.clone();
        dup[section_start..section_start + 4].copy_from_slice(&2u32.to_le_bytes());
        dup.extend_from_slice(&chunk);
        assert!(matches!(
            Checkpoint::from_bytes(&dup),
            Err(CheckpointError::DuplicateChunk { ref tag }) if tag == "m3fend.memory"
        ));

        // Truncation inside the section.
        let cut = &bytes[..bytes.len() - 2];
        assert!(matches!(
            Checkpoint::from_bytes(cut),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected_by_the_length_check() {
        let bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        let cut = &bytes[..bytes.len() - 7];
        assert!(matches!(
            Checkpoint::from_bytes(cut),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn bit_flips_are_detected_by_the_crc() {
        let mut bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        let mid = 20 + (bytes.len() - 20) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupted { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        bytes.push(0);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn restore_into_rejects_layout_mismatches() {
        let config = tiny_config();
        let ckpt = Checkpoint::new("x", &config, &sample_store());
        // Wrong parameter count.
        let mut empty = ParamStore::new();
        assert!(ckpt.restore_into(&mut empty).is_err());
        // Wrong shape under the same name.
        let mut wrong = ParamStore::new();
        wrong.add("layer.weight", Tensor::zeros(&[3, 3]));
        wrong.add_frozen("emb.table", Tensor::zeros(&[2]));
        assert!(ckpt.restore_into(&mut wrong).is_err());
        // Matching layout restores the exact values.
        let mut good = ParamStore::new();
        good.add("layer.weight", Tensor::zeros(&[2, 2]));
        good.add_frozen("emb.table", Tensor::zeros(&[2]));
        ckpt.restore_into(&mut good).unwrap();
        assert_eq!(good.value(good.iter().next().unwrap().0).data()[0], 1.5);
    }
}
