//! Versioned model checkpoints: `ParamStore` + `ModelConfig` + `Vocabulary`.
//!
//! # File format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"DTDB"
//! 4       4     format version (u32 LE)
//! 8       8     payload length in bytes (u64 LE)
//! 16      4     CRC-32 of the payload (u32 LE)
//! 20      ...   payload
//! ```
//!
//! The payload is, in order: the architecture tag (the constructor the loader
//! must use to rebuild the model), the full [`ModelConfig`] including the
//! vocabulary layout, and every parameter of the [`ParamStore`] (name,
//! trainable flag, shape, and the raw IEEE-754 bit patterns of the values).
//! Gradients are transient optimizer state and are not persisted; a loaded
//! store starts with zero gradients.
//!
//! The header makes two failure modes loud before any tensor is built:
//! a truncated file fails the payload-length check and a corrupted file
//! fails the CRC, both with dedicated error variants.

use crate::codec::{crc32, ByteReader, ByteWriter, CodecError};
use dtdbd_data::Vocabulary;
use dtdbd_models::ModelConfig;
use dtdbd_tensor::{ParamStore, Tensor};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// File magic, `b"DTDB"`.
pub const MAGIC: [u8; 4] = *b"DTDB";
/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// Why a checkpoint failed to save or load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The file is shorter than its header promises.
    Truncated {
        /// Payload bytes promised by the header.
        expected: u64,
        /// Payload bytes actually present.
        found: u64,
    },
    /// The payload's CRC-32 does not match the header.
    Corrupted {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the bytes on disk.
        found: u32,
    },
    /// The payload decoded but its structure is invalid.
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::BadMagic => write!(f, "not a DTDBD checkpoint (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint format version {v} (supported: {FORMAT_VERSION})"
                )
            }
            Self::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated checkpoint: header promises {expected} payload bytes, found {found}"
                )
            }
            Self::Corrupted { expected, found } => {
                write!(
                    f,
                    "corrupted checkpoint: CRC {found:#010x}, header says {expected:#010x}"
                )
            }
            Self::Malformed(msg) => write!(f, "malformed checkpoint payload: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        Self::Malformed(e.to_string())
    }
}

/// A fully decoded checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Architecture tag naming the constructor that rebuilds the model
    /// (e.g. `"TextCNN-S"`).
    pub arch: String,
    /// The model's configuration, including the vocabulary layout.
    pub config: ModelConfig,
    /// The model's parameters (gradients reset to zero).
    pub params: ParamStore,
}

impl Checkpoint {
    /// Assemble a checkpoint from live training state.
    pub fn new(arch: impl Into<String>, config: &ModelConfig, params: &ParamStore) -> Self {
        Self {
            arch: arch.into(),
            config: config.clone(),
            params: params.clone(),
        }
    }

    /// Serialize to bytes (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.str(&self.arch);
        encode_config(&mut payload, &self.config);
        encode_params(&mut payload, &self.params);
        let payload = payload.into_bytes();

        let mut out = ByteWriter::new();
        out.bytes(&MAGIC);
        out.u32(FORMAT_VERSION);
        out.u64(payload.len() as u64);
        out.u32(crc32(&payload));
        out.bytes(&payload);
        out.into_bytes()
    }

    /// Decode from bytes, verifying magic, version, length and CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.bytes(4).map_err(|_| CheckpointError::BadMagic)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r
            .u32()
            .map_err(|_| CheckpointError::UnsupportedVersion(0))?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let declared_len = r.u64().map_err(|_| CheckpointError::Truncated {
            expected: 0,
            found: 0,
        })?;
        let declared_crc = r.u32().map_err(|_| CheckpointError::Truncated {
            expected: declared_len,
            found: 0,
        })?;
        if (r.remaining() as u64) < declared_len {
            return Err(CheckpointError::Truncated {
                expected: declared_len,
                found: r.remaining() as u64,
            });
        }
        if (r.remaining() as u64) > declared_len {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after the payload",
                r.remaining() as u64 - declared_len
            )));
        }
        let payload = r.bytes(declared_len as usize)?;
        let found_crc = crc32(payload);
        if found_crc != declared_crc {
            return Err(CheckpointError::Corrupted {
                expected: declared_crc,
                found: found_crc,
            });
        }

        let mut p = ByteReader::new(payload);
        let arch = p.str()?;
        let config = decode_config(&mut p)?;
        let params = decode_params(&mut p)?;
        if !p.is_exhausted() {
            return Err(CheckpointError::Malformed(format!(
                "{} undecoded payload bytes",
                p.remaining()
            )));
        }
        Ok(Self {
            arch,
            config,
            params,
        })
    }

    /// Write the checkpoint to a file (atomically: a temp file in the same
    /// directory is written first and then renamed over the target).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp-dtdbd");
        fs::write(&tmp, self.to_bytes())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and verify a checkpoint from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let bytes = fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Copy this checkpoint's parameter values into a freshly built model's
    /// store, verifying that the layouts (names and shapes, in registration
    /// order) agree. This is the restore half of the save→build→restore
    /// loading protocol: the loader reconstructs the architecture from
    /// [`Checkpoint::arch`] and [`Checkpoint::config`], which registers
    /// randomly initialised parameters, then overwrites them here.
    pub fn restore_into(&self, store: &mut ParamStore) -> Result<(), CheckpointError> {
        if store.len() != self.params.len() {
            return Err(CheckpointError::Malformed(format!(
                "parameter count mismatch: model registers {}, checkpoint holds {}",
                store.len(),
                self.params.len()
            )));
        }
        for ((_, live), (_, saved)) in store.iter().zip(self.params.iter()) {
            if live.name != saved.name || live.value.shape() != saved.value.shape() {
                return Err(CheckpointError::Malformed(format!(
                    "parameter layout mismatch: model has {} {:?}, checkpoint has {} {:?}",
                    live.name,
                    live.value.shape(),
                    saved.name,
                    saved.value.shape()
                )));
            }
        }
        store.copy_values_from(&self.params);
        Ok(())
    }
}

fn encode_vocab(w: &mut ByteWriter, vocab: &Vocabulary) {
    w.u64(vocab.n_domains() as u64);
    w.u64(vocab.n_topic_groups() as u64);
    w.u64(vocab.shared_cues_per_class() as u64);
    w.u64(vocab.domain_cues_per_class() as u64);
    w.u64(vocab.topic_tokens_per_group() as u64);
    w.u64(vocab.noise_tokens() as u64);
}

fn decode_vocab(r: &mut ByteReader<'_>) -> Result<Vocabulary, CheckpointError> {
    Ok(Vocabulary::from_parts(
        r.u64()? as usize,
        r.u64()? as usize,
        r.u64()? as usize,
        r.u64()? as usize,
        r.u64()? as usize,
        r.u64()? as usize,
    ))
}

fn encode_config(w: &mut ByteWriter, config: &ModelConfig) {
    encode_vocab(w, &config.vocab);
    w.u64(config.vocab_size as u64);
    w.u64(config.seq_len as u64);
    w.u64(config.n_domains as u64);
    w.u64(config.emb_dim as u64);
    w.u64(config.hidden as u64);
    w.u64(config.feature_dim as u64);
    w.f32(config.dropout);
    w.u64(config.emb_seed);
    w.u64(config.style_dim as u64);
    w.u64(config.emotion_dim as u64);
    w.u64(config.n_experts as u64);
}

fn decode_config(r: &mut ByteReader<'_>) -> Result<ModelConfig, CheckpointError> {
    let vocab = decode_vocab(r)?;
    Ok(ModelConfig {
        vocab,
        vocab_size: r.u64()? as usize,
        seq_len: r.u64()? as usize,
        n_domains: r.u64()? as usize,
        emb_dim: r.u64()? as usize,
        hidden: r.u64()? as usize,
        feature_dim: r.u64()? as usize,
        dropout: r.f32()?,
        emb_seed: r.u64()?,
        style_dim: r.u64()? as usize,
        emotion_dim: r.u64()? as usize,
        n_experts: r.u64()? as usize,
    })
}

fn encode_params(w: &mut ByteWriter, params: &ParamStore) {
    w.u64(params.len() as u64);
    for (_, param) in params.iter() {
        w.str(&param.name);
        w.u8(u8::from(param.trainable));
        w.u64(param.value.ndim() as u64);
        for &dim in param.value.shape() {
            w.u64(dim as u64);
        }
        w.f32_slice(param.value.data());
    }
}

fn decode_params(r: &mut ByteReader<'_>) -> Result<ParamStore, CheckpointError> {
    let count = r.u64()?;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name = r.str()?;
        let trainable = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "parameter {name}: invalid trainable flag {other}"
                )))
            }
        };
        let ndim = r.u64()? as usize;
        if ndim > 8 {
            return Err(CheckpointError::Malformed(format!(
                "parameter {name}: implausible rank {ndim}"
            )));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(r.u64()? as usize);
        }
        let data = r.f32_values()?;
        // Checked product: corrupted dims must map to a typed error, not an
        // overflow panic.
        let expected: usize = shape
            .iter()
            .try_fold(1usize, |acc, &dim| acc.checked_mul(dim))
            .ok_or_else(|| {
                CheckpointError::Malformed(format!(
                    "parameter {name}: shape {shape:?} overflows the element count"
                ))
            })?;
        if data.len() != expected {
            return Err(CheckpointError::Malformed(format!(
                "parameter {name}: shape {shape:?} needs {expected} values, payload has {}",
                data.len()
            )));
        }
        let value = Tensor::new(shape, data);
        if trainable {
            store.add(name, value);
        } else {
            store.add_frozen(name, value);
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_data::{weibo21_spec, GeneratorConfig, NewsGenerator};

    fn tiny_config() -> ModelConfig {
        let ds =
            NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny()).generate_scaled(1, 0.01);
        ModelConfig::tiny(&ds)
    }

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.add(
            "layer.weight",
            Tensor::from_rows(&[vec![1.5, -2.25], vec![0.0, -0.0]]),
        );
        store.add_frozen(
            "emb.table",
            Tensor::from_vec(vec![f32::MIN_POSITIVE, 3.0e38]),
        );
        store
    }

    #[test]
    fn byte_round_trip_preserves_everything() {
        let config = tiny_config();
        let store = sample_store();
        let ckpt = Checkpoint::new("TextCNN-S", &config, &store);
        let decoded = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(decoded.arch, "TextCNN-S");
        assert_eq!(decoded.config.seq_len, config.seq_len);
        assert_eq!(decoded.config.emb_seed, config.emb_seed);
        assert_eq!(decoded.config.vocab.size(), config.vocab.size());
        assert_eq!(decoded.params.len(), 2);
        let (_, w) = decoded.params.iter().next().unwrap();
        assert_eq!(w.name, "layer.weight");
        assert!(w.trainable);
        // Bit-exact, including the negative zero.
        assert_eq!(w.value.data()[3].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected_by_the_length_check() {
        let bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        let cut = &bytes[..bytes.len() - 7];
        assert!(matches!(
            Checkpoint::from_bytes(cut),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn bit_flips_are_detected_by_the_crc() {
        let mut bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        let mid = 20 + (bytes.len() - 20) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupted { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Checkpoint::new("x", &tiny_config(), &sample_store()).to_bytes();
        bytes.push(0);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn restore_into_rejects_layout_mismatches() {
        let config = tiny_config();
        let ckpt = Checkpoint::new("x", &config, &sample_store());
        // Wrong parameter count.
        let mut empty = ParamStore::new();
        assert!(ckpt.restore_into(&mut empty).is_err());
        // Wrong shape under the same name.
        let mut wrong = ParamStore::new();
        wrong.add("layer.weight", Tensor::zeros(&[3, 3]));
        wrong.add_frozen("emb.table", Tensor::zeros(&[2]));
        assert!(ckpt.restore_into(&mut wrong).is_err());
        // Matching layout restores the exact values.
        let mut good = ParamStore::new();
        good.add("layer.weight", Tensor::zeros(&[2, 2]));
        good.add_frozen("emb.table", Tensor::zeros(&[2]));
        ckpt.restore_into(&mut good).unwrap();
        assert_eq!(good.value(good.iter().next().unwrap().0).data()[0], 1.5);
    }
}
