//! In-tree Prometheus text exposition (format 0.0.4) encoder and a strict
//! lint used by tests and the CI integration stage.
//!
//! The serving layer renders its whole `/metrics` page through [`PromText`]:
//! `# HELP` / `# TYPE` headers, label escaping per the exposition spec
//! (`\\`, `\"`, `\n`), canonical `NaN` / `+Inf` / `-Inf` value tokens, and
//! histogram families emitted as cumulative `_bucket{le=...}` series ending
//! in `le="+Inf"` plus `_sum` / `_count`. [`lint`] re-parses a rendered page
//! and checks the invariants a scraper relies on — well-formed lines, legal
//! metric and label names, closed quotes, parseable values, monotone
//! cumulative buckets, and `+Inf == _count` agreement — so the fuzz suite
//! can hammer the encoder with hostile labels and values.

use crate::telemetry::{bucket_upper_bound_ns, HistogramSnapshot, LATENCY_BUCKETS};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Escape a label value per the exposition format: backslash, double quote
/// and newline must be escaped; everything else passes through.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Render a sample value. Prometheus requires the canonical spellings for
/// the non-finite values; finite values use Rust's shortest round-trip
/// float formatting, which the scraper side parses exactly.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Metric kinds the serving layer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Incremental writer for one text exposition page.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a metric family: emits the `# HELP` and `# TYPE` headers.
    /// `help` is free text (newlines and backslashes are escaped).
    pub fn family(&mut self, name: &str, kind: MetricKind, help: &str) {
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.name());
    }

    /// Emit one sample line, e.g. `name{label="value"} 1.5`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.render_labels(labels, None);
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// Emit a full histogram family body for `name` (the `family` header
    /// with [`MetricKind::Histogram`] must come first): cumulative
    /// `name_bucket{le=...}` series (trailing all-empty buckets are
    /// trimmed, `le="+Inf"` always present and equal to the count),
    /// `name_sum` in seconds, and `name_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let last_used = snap
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1)
            .min(LATENCY_BUCKETS - 1);
        let mut cum = 0u64;
        for i in 0..last_used {
            cum += snap.buckets[i];
            // Bounds are powers of two in ns, exposed in seconds.
            let le = match bucket_upper_bound_ns(i) {
                Some(ns) => format!("{}", ns as f64 * 1e-9),
                None => break,
            };
            self.out.push_str(name);
            self.out.push_str("_bucket");
            self.render_labels(labels, Some(&le));
            let _ = writeln!(self.out, " {cum}");
        }
        self.out.push_str(name);
        self.out.push_str("_bucket");
        self.render_labels(labels, Some("+Inf"));
        let _ = writeln!(self.out, " {}", snap.count);
        self.out.push_str(name);
        self.out.push_str("_sum");
        self.render_labels(labels, None);
        let _ = writeln!(self.out, " {}", format_value(snap.sum_ns as f64 * 1e-9));
        self.out.push_str(name);
        self.out.push_str("_count");
        self.render_labels(labels, None);
        let _ = writeln!(self.out, " {}", snap.count);
    }

    fn render_labels(&mut self, labels: &[(&str, &str)], le: Option<&str>) {
        if labels.is_empty() && le.is_none() {
            return;
        }
        self.out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                self.out.push(',');
            }
            first = false;
            let _ = write!(self.out, "{k}=\"{}\"", escape_label_value(v));
        }
        if let Some(le) = le {
            if !first {
                self.out.push(',');
            }
            let _ = write!(self.out, "le=\"{le}\"");
        }
        self.out.push('}');
    }

    /// Finish the page. The exposition format requires it to end in a
    /// newline (every writer method already emits one per line).
    pub fn into_string(self) -> String {
        self.out
    }
}

// ---------------------------------------------------------------------------
// Lint: strict re-parse of a rendered page
// ---------------------------------------------------------------------------

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// (labels, rest-after-closing-brace) from a parsed `{...}` block.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parse one `{...}` label block starting after the metric name. Returns
/// (labels, rest-after-closing-brace) or a description of the problem.
fn parse_labels(s: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    let mut rest = &s[1..]; // caller guarantees s starts with '{'
    loop {
        rest = rest.trim_start_matches(' ');
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' near {rest:?}"))?;
        let name = rest[..eq].trim();
        if !is_valid_label_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        rest = &rest[eq + 1..];
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label {name:?} value is not quoted")),
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, ch) in chars {
            if escaped {
                match ch {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    _ => return Err(format!("illegal escape \\{ch} in label {name:?}")),
                }
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                end = Some(i);
                break;
            } else if ch == '\n' {
                return Err(format!("unescaped newline in label {name:?}"));
            } else {
                value.push(ch);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated value for label {name:?}"))?;
        labels.push((name.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.starts_with('}') {
            return Err(format!("expected ',' or '}}' after label {name:?}"));
        }
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "NaN" => Ok(f64::NAN),
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        other => other
            .parse::<f64>()
            .map_err(|e| format!("unparseable value {other:?}: {e}")),
    }
}

/// Key identifying one histogram series: base name + non-`le` labels.
fn series_key(base: &str, labels: &[(String, String)]) -> String {
    let mut key = base.to_string();
    for (k, v) in labels {
        if k != "le" {
            key.push('|');
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
    }
    key
}

/// Strictly validate a text exposition page: line shapes, metric / label
/// name charsets, quoting and escapes, value syntax, `TYPE`-before-samples,
/// and for every histogram series the cumulative-bucket invariants (counts
/// monotone in `le`, `le` bounds strictly increasing, terminal `le="+Inf"`
/// present and equal to the matching `_count`). Returns the first violation
/// with its line number.
pub fn lint(text: &str) -> Result<(), String> {
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let mut types: HashMap<String, String> = HashMap::new();
    // Per histogram series: ascending (le, cumulative count) plus sum/count.
    let mut buckets: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    let mut bucket_lines: HashMap<String, usize> = HashMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let fail = |msg: String| Err(format!("line {lineno}: {msg}"));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            match keyword {
                "HELP" if parts.next().map_or(true, |n| !is_valid_metric_name(n)) => {
                    return fail(format!("HELP with invalid metric name: {line:?}"));
                }
                "HELP" => {}
                "TYPE" => {
                    let name = parts.next().unwrap_or("");
                    if !is_valid_metric_name(name) {
                        return fail(format!("TYPE with invalid metric name: {line:?}"));
                    }
                    let kind = parts.next().unwrap_or("");
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return fail(format!("unknown metric type {kind:?}"));
                    }
                    types.insert(name.to_string(), kind.to_string());
                }
                _ => {} // free-form comment
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comment without the canonical space
        }

        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {lineno}: sample without a value: {line:?}"))?;
        let name = &line[..name_end];
        if !is_valid_metric_name(name) {
            return fail(format!("invalid metric name {name:?}"));
        }
        let (labels, rest) = if line[name_end..].starts_with('{') {
            match parse_labels(&line[name_end..]) {
                Ok(parsed) => parsed,
                Err(e) => return fail(e),
            }
        } else {
            (Vec::new(), &line[name_end..])
        };
        let value_str = rest.trim();
        if value_str.is_empty() {
            return fail(format!("sample {name:?} has no value"));
        }
        // Timestamps (a second field) are legal in the format but this
        // encoder never emits them; reject so drift is caught.
        if value_str.contains(' ') {
            return fail(format!("unexpected extra field in {line:?}"));
        }
        let value = match parse_value(value_str) {
            Ok(v) => v,
            Err(e) => return fail(e),
        };

        // Histogram bookkeeping.
        if let Some(base) = name.strip_suffix("_bucket") {
            if types.get(base).map(String::as_str) == Some("histogram") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("line {lineno}: {name} without an le label"))?;
                let bound = match parse_value(le) {
                    Ok(b) => b,
                    Err(e) => return fail(format!("bad le bound: {e}")),
                };
                if value.is_nan() || value < 0.0 {
                    return fail(format!("bucket count {value} is not a count"));
                }
                let key = series_key(base, &labels);
                let series = buckets.entry(key.clone()).or_default();
                if let Some(&(prev_le, prev_cum)) = series.last() {
                    if bound <= prev_le {
                        return fail(format!("le bounds not increasing: {bound} after {prev_le}"));
                    }
                    if value < prev_cum {
                        return fail(format!(
                            "cumulative bucket counts decreased: {value} after {prev_cum}"
                        ));
                    }
                }
                series.push((bound, value));
                bucket_lines.insert(key, lineno);
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            if types.get(base).map(String::as_str) == Some("histogram") {
                counts.insert(series_key(base, &labels), value);
            }
        }
    }

    for (key, series) in &buckets {
        let lineno = bucket_lines.get(key).copied().unwrap_or(0);
        let Some(&(last_le, last_cum)) = series.last() else {
            continue;
        };
        if last_le != f64::INFINITY {
            return Err(format!(
                "line {lineno}: histogram series {key:?} does not end with le=\"+Inf\""
            ));
        }
        match counts.get(key) {
            Some(&count) if count == last_cum => {}
            Some(&count) => {
                return Err(format!(
                    "line {lineno}: {key:?} +Inf bucket {last_cum} != _count {count}"
                ));
            }
            None => {
                return Err(format!(
                    "line {lineno}: histogram series {key:?} has no _count sample"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::LatencyHistogram;

    #[test]
    fn escapes_and_values_render_canonically() {
        assert_eq!(escape_label_value(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(1.5), "1.5");
        assert_eq!(format_value(0.0), "0");
    }

    #[test]
    fn counter_page_renders_and_lints() {
        let mut page = PromText::new();
        page.family("dtdbd_requests_total", MetricKind::Counter, "Requests.");
        page.sample(
            "dtdbd_requests_total",
            &[("arch", "TextCNN-S"), ("worker", "0")],
            42.0,
        );
        page.family("dtdbd_ready", MetricKind::Gauge, "Readiness flag.");
        page.sample("dtdbd_ready", &[], 1.0);
        let text = page.into_string();
        assert!(text.contains("# TYPE dtdbd_requests_total counter"));
        assert!(text.contains("dtdbd_requests_total{arch=\"TextCNN-S\",worker=\"0\"} 42"));
        assert!(text.contains("dtdbd_ready 1"));
        lint(&text).expect("valid page");
    }

    #[test]
    fn histogram_family_is_cumulative_and_consistent() {
        let h = LatencyHistogram::new();
        h.record_ns(700);
        h.record_ns(700);
        h.record_ns(1_000_000);
        let mut page = PromText::new();
        page.family(
            "dtdbd_stage_seconds",
            MetricKind::Histogram,
            "Stage latency.",
        );
        page.histogram(
            "dtdbd_stage_seconds",
            &[("stage", "inference")],
            &h.snapshot(),
        );
        let text = page.into_string();
        lint(&text).expect("valid histogram");
        assert!(text.contains("le=\"+Inf\"} 3"));
        assert!(text.contains("dtdbd_stage_seconds_count{stage=\"inference\"} 3"));
        // The 700ns pair lands in the [512, 1024) ns bucket => le 1.024e-6.
        assert!(
            text.contains("le=\"0.000001024\"} 2"),
            "cumulative 700ns bucket missing:\n{text}"
        );
    }

    #[test]
    fn lint_rejects_broken_pages() {
        let cases: [(&str, &str); 7] = [
            ("no newline", "metric 1"),
            ("bad name", "9metric 1\n"),
            ("unquoted label", "m{l=x} 1\n"),
            ("unterminated label", "m{l=\"x} 1\n"),
            ("bad value", "m 1.2.3\n"),
            (
                "non-monotone buckets",
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
            ),
            (
                "inf/count mismatch",
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\nh_sum 0\n",
            ),
        ];
        for (what, page) in cases {
            assert!(lint(page).is_err(), "lint must reject: {what}");
        }
        lint("").expect("empty page is fine");
    }
}
