//! Tape-free inference sessions.
//!
//! An [`InferenceSession`] bundles everything one worker needs to answer
//! prediction requests: the model, its parameters, a warm [`BufferPool`] of
//! scratch buffers, and a [`RequestEncoder`] matching the corpus geometry.
//! Each call runs the model's tape-free [`FakeNewsModel::infer`] path — no
//! autograd bookkeeping, and after the first call no activation allocation —
//! and maps the batch outputs back to per-item [`Prediction`]s.

use crate::checkpoint::{Checkpoint, CheckpointError};
use dtdbd_data::{Batch, EncodedRequest, RequestEncoder};
use dtdbd_models::{FakeNewsModel, ModelConfig};
use dtdbd_tensor::{BufferPool, ParamStore};

/// Per-item serving result.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Probability that the item is fake (softmax over the two classes).
    pub fake_prob: f32,
    /// Raw classification logits `[real, fake]`.
    pub logits: [f32; 2],
    /// Softmax domain scores, for models with a domain branch.
    pub domain_scores: Option<Vec<f32>>,
}

impl Prediction {
    /// Hard label under a 0.5 threshold.
    pub fn is_fake(&self) -> bool {
        self.fake_prob >= 0.5
    }
}

/// A ready-to-serve model: parameters, scratch memory and request encoding.
pub struct InferenceSession<M> {
    model: M,
    store: ParamStore,
    pool: BufferPool,
    encoder: RequestEncoder,
    requests_served: u64,
    threads: usize,
}

impl<M: FakeNewsModel> InferenceSession<M> {
    /// Wrap a live model and its parameter store.
    pub fn new(model: M, store: ParamStore) -> Self {
        let config = model.config();
        let encoder = RequestEncoder::new(config.vocab_size, config.seq_len, config.n_domains);
        Self {
            model,
            store,
            pool: BufferPool::new(),
            encoder,
            requests_served: 0,
            threads: 1,
        }
    }

    /// Set the intra-op thread count the compute kernels may use per forward
    /// pass (clamped to at least 1). Predictions are bit-identical at any
    /// setting; the knob only changes throughput.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Intra-op thread count of this session's forward passes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Rebuild a model from a checkpoint: `build` constructs the
    /// architecture (registering randomly initialised parameters in a fresh
    /// store, exactly as at training time), then the checkpoint's values are
    /// restored over them with a full layout check.
    pub fn from_checkpoint<F>(checkpoint: &Checkpoint, build: F) -> Result<Self, CheckpointError>
    where
        F: FnOnce(&mut ParamStore, &ModelConfig) -> M,
    {
        let mut store = ParamStore::new();
        let model = build(&mut store, &checkpoint.config);
        checkpoint.restore_into(&mut store)?;
        Ok(Self::new(model, store))
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The request encoder matching this model's corpus geometry.
    pub fn encoder(&self) -> &RequestEncoder {
        &self.encoder
    }

    /// Number of items served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Scratch-pool statistics `(reuse_hits, alloc_misses)` — after the
    /// first request, `alloc_misses` stops growing.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.reuse_hits(), self.pool.alloc_misses())
    }

    /// Run tape-free inference on a pre-assembled batch.
    pub fn predict_batch(&mut self, batch: &Batch) -> Vec<Prediction> {
        let output =
            self.model
                .infer_with_threads(&mut self.store, &mut self.pool, batch, self.threads);
        self.requests_served += batch.batch_size as u64;
        let probs = output.logits.softmax_rows();
        let domain_scores = output.domain_scores();
        (0..batch.batch_size)
            .map(|i| Prediction {
                fake_prob: probs.at2(i, 1),
                logits: [output.logits.at2(i, 0), output.logits.at2(i, 1)],
                domain_scores: domain_scores.as_ref().map(|scores| scores.row(i).to_vec()),
            })
            .collect()
    }

    /// Coalesce encoded requests into one batch and predict them all.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn predict_requests(&mut self, requests: &[EncodedRequest]) -> Vec<Prediction> {
        let batch = self.encoder.batch(requests);
        self.predict_batch(&batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_data::{weibo21_spec, BatchIter, GeneratorConfig, InferenceRequest, NewsGenerator};
    use dtdbd_models::TextCnnModel;
    use dtdbd_tensor::rng::Prng;

    fn session() -> (
        InferenceSession<TextCnnModel>,
        dtdbd_data::MultiDomainDataset,
    ) {
        let ds =
            NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny()).generate_scaled(5, 0.02);
        let cfg = ModelConfig::tiny(&ds);
        let mut store = ParamStore::new();
        let model = TextCnnModel::student(&mut store, &cfg, &mut Prng::new(1));
        (InferenceSession::new(model, store), ds)
    }

    #[test]
    fn predictions_are_probabilities_and_counted() {
        let (mut session, ds) = session();
        let batch = BatchIter::new(&ds, 16, 0, false).next().unwrap();
        let preds = session.predict_batch(&batch);
        assert_eq!(preds.len(), batch.batch_size);
        for p in &preds {
            assert!((0.0..=1.0).contains(&p.fake_prob));
            assert!(p.logits.iter().all(|l| l.is_finite()));
            assert!(p.domain_scores.is_none(), "TextCNN has no domain branch");
        }
        assert_eq!(session.requests_served(), batch.batch_size as u64);
    }

    #[test]
    fn pool_warms_up_after_the_first_batch() {
        let (mut session, ds) = session();
        let batch = BatchIter::new(&ds, 8, 0, false).next().unwrap();
        session.predict_batch(&batch);
        let (_, misses_after_first) = session.pool_stats();
        session.predict_batch(&batch);
        session.predict_batch(&batch);
        let (hits, misses) = session.pool_stats();
        assert_eq!(misses, misses_after_first, "steady state allocates nothing");
        assert!(hits > 0);
    }

    #[test]
    fn single_requests_round_trip_through_the_encoder() {
        let (mut session, ds) = session();
        let item = &ds.items()[0];
        let encoded = session
            .encoder()
            .encode(&InferenceRequest::new(item.tokens.clone(), item.domain))
            .unwrap();
        let preds = session.predict_requests(&[encoded]);
        assert_eq!(preds.len(), 1);
        assert!((0.0..=1.0).contains(&preds[0].fake_prob));
    }
}
