//! Tape-free inference sessions.
//!
//! An [`InferenceSession`] bundles everything one worker needs to answer
//! prediction requests: the model, its parameters, a warm [`BufferPool`] of
//! scratch buffers, and a [`RequestEncoder`] matching the corpus geometry.
//! Each call runs the model's tape-free [`FakeNewsModel::infer`] path — no
//! autograd bookkeeping, and after the first call no activation allocation —
//! and maps the batch outputs back to per-item [`Prediction`]s.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::shards::ShardStore;
use dtdbd_data::{Batch, EncodedRequest, RequestEncoder};
use dtdbd_models::{FakeNewsModel, InferOptions, ModelConfig};
use dtdbd_tensor::{
    BufferPool, KernelTimers, ParamId, ParamStore, Precision, QuantizedMatrix, QuantizedParams,
    ShardedTable, Tensor,
};
use std::sync::Arc;

/// Per-item serving result.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Probability that the item is fake (softmax over the two classes).
    pub fake_prob: f32,
    /// Raw classification logits `[real, fake]`.
    pub logits: [f32; 2],
    /// Softmax domain scores, for models with a domain branch.
    pub domain_scores: Option<Vec<f32>>,
}

impl Prediction {
    /// Hard label under a 0.5 threshold.
    pub fn is_fake(&self) -> bool {
        self.fake_prob >= 0.5
    }
}

/// A ready-to-serve model: parameters, scratch memory and request encoding.
pub struct InferenceSession<M> {
    model: M,
    store: ParamStore,
    pool: BufferPool,
    encoder: RequestEncoder,
    requests_served: u64,
    threads: usize,
    /// When attached (sharded serving), embedding lookups of this parameter
    /// gather from the shared read-only shards and the store's own table
    /// value is dropped to a `[0, dim]` stub — the per-worker memory win.
    embedding_shards: Option<(ParamId, ShardedTable)>,
    /// Optional per-kernel duration sink threaded into every forward pass
    /// (the serving telemetry registry). `None` keeps the kernels free of
    /// clock reads; the sink never changes prediction bits either way.
    kernel_timers: Option<Arc<dyn KernelTimers>>,
    /// Inference precision. [`Precision::Int8`] after a successful
    /// [`InferenceSession::quantize`]; [`Precision::Fp32`] otherwise.
    precision: Precision,
    /// Int8 registry built by [`InferenceSession::quantize`]: the quantized
    /// forms of every quantizable weight, threaded into each forward pass.
    quantized: Option<Arc<QuantizedParams>>,
    /// Bytes of a *private* quantized embedding table (replica-mode int8:
    /// the table leaves the store for a one-shard int8 view held by this
    /// session alone, so it still counts as per-worker resident memory —
    /// unlike a shared [`ShardStore`] pool, which counts once per process).
    private_table_bytes: u64,
}

impl<M: FakeNewsModel> InferenceSession<M> {
    /// Wrap a live model and its parameter store.
    pub fn new(model: M, store: ParamStore) -> Self {
        let config = model.config();
        let encoder = RequestEncoder::new(config.vocab_size, config.seq_len, config.n_domains);
        Self {
            model,
            store,
            pool: BufferPool::new(),
            encoder,
            requests_served: 0,
            threads: 1,
            embedding_shards: None,
            kernel_timers: None,
            precision: Precision::Fp32,
            quantized: None,
            private_table_bytes: 0,
        }
    }

    /// Set the intra-op thread count the compute kernels may use per forward
    /// pass (clamped to at least 1). Predictions are bit-identical at any
    /// setting; the knob only changes throughput.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Intra-op thread count of this session's forward passes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Report per-kernel forward-pass durations into `sink` (`None` turns
    /// the hooks back off). Observation only: predictions stay bit-identical
    /// with or without a sink.
    pub fn set_kernel_timers(&mut self, sink: Option<Arc<dyn KernelTimers>>) {
        self.kernel_timers = sink;
    }

    /// Rebuild a model from a checkpoint: `build` constructs the
    /// architecture (registering randomly initialised parameters in a fresh
    /// store, exactly as at training time), the checkpoint's values are
    /// restored over them with a full layout check, and the checkpoint's
    /// side state is imported into the model — so state outside the store
    /// (M3FEND's domain memory bank) is restored too. A side state the
    /// model refuses (unknown tag, missing required chunk, malformed body)
    /// is a typed [`CheckpointError::SideState`], never a silently
    /// half-restored model.
    pub fn from_checkpoint<F>(checkpoint: &Checkpoint, build: F) -> Result<Self, CheckpointError>
    where
        F: FnOnce(&mut ParamStore, &ModelConfig) -> M,
    {
        let mut store = ParamStore::new();
        let mut model = build(&mut store, &checkpoint.config);
        checkpoint.restore_into(&mut store)?;
        // Container-level chunks (the `telemetry.` namespace, e.g. the drift
        // baseline) are stripped first: models keep their loud unknown-tag
        // contract for everything that is actually theirs.
        model
            .import_side_state(&checkpoint.side_state.model_chunks())
            .map_err(CheckpointError::SideState)?;
        Ok(Self::new(model, store))
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The request encoder matching this model's corpus geometry.
    pub fn encoder(&self) -> &RequestEncoder {
        &self.encoder
    }

    /// Number of items served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Scratch-pool statistics `(reuse_hits, alloc_misses)` — after the
    /// first request, `alloc_misses` stops growing.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.reuse_hits(), self.pool.alloc_misses())
    }

    /// Borrow the session's parameter store (the shard pool builder reads
    /// the embedding table out of it before it is dropped).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Bytes of parameter values resident in this session's private store,
    /// plus — after [`InferenceSession::quantize`] — the int8 registry and
    /// any private (replica-mode) quantized table. After
    /// [`InferenceSession::attach_embedding_shards`] the dominant embedding
    /// table no longer counts here — it lives once in the shared
    /// [`ShardStore`], not per worker.
    pub fn resident_param_bytes(&self) -> u64 {
        self.store.num_scalars() as u64 * std::mem::size_of::<f32>() as u64
            + self.quantized.as_ref().map_or(0, |q| q.bytes())
            + self.private_table_bytes
    }

    /// Inference precision of this session's forward passes.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Bytes of int8 weight matrices (codes + per-row scales) resident in
    /// this session, including a private replica-mode quantized table; zero
    /// before [`InferenceSession::quantize`].
    pub fn quantized_bytes(&self) -> u64 {
        self.quantized.as_ref().map_or(0, |q| q.bytes()) + self.private_table_bytes
    }

    /// Quantize this session to the given precision. [`Precision::Fp32`] is
    /// the identity. [`Precision::Int8`] rewrites every quantizable weight
    /// (linear/conv matrices, marked by the layers that registered them)
    /// into per-row int8 + scale form, drops the f32 originals to empty
    /// stubs, and — in replica mode, i.e. before any shared shard pool is
    /// attached — moves the frozen embedding table into a private one-shard
    /// int8 view. In sharded mode the table is the (already attached)
    /// shared pool's concern and is left alone here.
    ///
    /// Subsequent forward passes run the fused quantize → i32 GEMM →
    /// dequantize kernel: predictions differ from f32 within quantization
    /// error but are bit-identical to themselves at any thread/shard count.
    ///
    /// Fails with [`ConfigError::NoQuantizableParams`] when the model has
    /// neither a quantizable weight nor a frozen embedding table — an int8
    /// deployment of such an arch would silently serve f32.
    pub fn quantize(&mut self, precision: Precision) -> Result<(), crate::builder::ConfigError> {
        use crate::builder::ConfigError;
        if precision == Precision::Fp32 {
            return Ok(());
        }
        let mut registry = QuantizedParams::new();
        let mut stubs: Vec<(ParamId, Vec<usize>)> = Vec::new();
        for (id, p) in self.store.iter() {
            if !p.quantizable {
                continue;
            }
            let matrix = match p.value.ndim() {
                2 => QuantizedMatrix::from_linear(&p.value),
                3 => QuantizedMatrix::from_conv(&p.value),
                _ => continue,
            };
            registry.insert(id, Arc::new(matrix));
            let mut stub = p.value.shape().to_vec();
            stub[0] = 0;
            stubs.push((id, stub));
        }
        // Replica mode only: move the frozen table (the same discovery rule
        // the shard pool uses) into a private one-shard int8 view. With a
        // shared pool attached the store already holds a stub.
        let table_id = if self.embedding_shards.is_none() {
            let vocab_rows = self.model.config().vocab_size;
            self.store
                .iter()
                .filter(|(_, p)| {
                    !p.trainable && p.value.ndim() == 2 && p.value.shape()[0] == vocab_rows
                })
                .max_by(|(_, a), (_, b)| {
                    crate::shards::dominant_table_rank(
                        (a.value.numel(), &a.name),
                        (b.value.numel(), &b.name),
                    )
                })
                .map(|(id, _)| id)
        } else {
            None
        };
        if registry.is_empty() && table_id.is_none() && self.embedding_shards.is_none() {
            return Err(ConfigError::NoQuantizableParams {
                arch: self.model.name().to_string(),
            });
        }
        for (id, stub) in stubs {
            self.store.get_mut(id).value = Tensor::zeros(&stub);
        }
        if let Some(id) = table_id {
            let table = ShardedTable::from_tensor_quantized(self.store.value(id), 1);
            let dim = table.dim();
            self.private_table_bytes = table.total_bytes() as u64;
            self.store.get_mut(id).value = Tensor::zeros(&[0, dim]);
            self.embedding_shards = Some((id, table));
        }
        self.quantized = Some(Arc::new(registry));
        self.precision = Precision::Int8;
        Ok(())
    }

    /// Serve embedding lookups of the pool's table from the shared shards
    /// and drop this session's private copy of the table (its store keeps a
    /// `[0, dim]` stub so checkpoint-restored layouts stay addressable).
    /// Predictions are bit-identical to the replica path — gathering is row
    /// copying from the same values, wherever they reside.
    ///
    /// Fails if this session has no parameter matching the pool's table
    /// name, or if the shapes disagree (a pool built from a different
    /// checkpoint). Re-attaching a (matching) pool is permitted.
    pub fn attach_embedding_shards(
        &mut self,
        pool: &ShardStore,
    ) -> Result<(), crate::builder::ConfigError> {
        use crate::builder::ConfigError;
        let id = self
            .store
            .iter()
            .find(|(_, p)| p.name == pool.param_name())
            .map(|(id, _)| id)
            .ok_or_else(|| ConfigError::MissingShardParam {
                param: pool.param_name().to_string(),
            })?;
        let shape = self.store.value(id).shape().to_vec();
        let attached_stub = shape == [0, pool.dim()];
        if shape != [pool.rows(), pool.dim()] && !attached_stub {
            return Err(ConfigError::ShardGeometryMismatch {
                param: pool.param_name().to_string(),
                expected_rows: pool.rows(),
                expected_dim: pool.dim(),
                found: shape,
            });
        }
        self.store.get_mut(id).value = Tensor::zeros(&[0, pool.dim()]);
        self.embedding_shards = Some((id, pool.shards().clone()));
        Ok(())
    }

    /// The attached shard view, if this session serves a sharded table.
    pub fn embedding_shards(&self) -> Option<&ShardedTable> {
        self.embedding_shards.as_ref().map(|(_, shards)| shards)
    }

    /// Run tape-free inference on a pre-assembled batch.
    pub fn predict_batch(&mut self, batch: &Batch) -> Vec<Prediction> {
        let opts = InferOptions {
            threads: self.threads,
            embedding_shards: self.embedding_shards.clone(),
            kernel_timers: self.kernel_timers.clone(),
            quantized: self.quantized.clone(),
        };
        let output = self
            .model
            .infer_with_opts(&mut self.store, &mut self.pool, batch, &opts);
        self.requests_served += batch.batch_size as u64;
        let probs = output.logits.softmax_rows();
        let domain_scores = output.domain_scores();
        (0..batch.batch_size)
            .map(|i| Prediction {
                fake_prob: probs.at2(i, 1),
                logits: [output.logits.at2(i, 0), output.logits.at2(i, 1)],
                domain_scores: domain_scores.as_ref().map(|scores| scores.row(i).to_vec()),
            })
            .collect()
    }

    /// Coalesce encoded requests into one batch and predict them all.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn predict_requests(&mut self, requests: &[EncodedRequest]) -> Vec<Prediction> {
        let batch = self.encoder.batch(requests);
        self.predict_batch(&batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_data::{weibo21_spec, BatchIter, GeneratorConfig, InferenceRequest, NewsGenerator};
    use dtdbd_models::TextCnnModel;
    use dtdbd_tensor::rng::Prng;

    fn session() -> (
        InferenceSession<TextCnnModel>,
        dtdbd_data::MultiDomainDataset,
    ) {
        let ds =
            NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny()).generate_scaled(5, 0.02);
        let cfg = ModelConfig::tiny(&ds);
        let mut store = ParamStore::new();
        let model = TextCnnModel::student(&mut store, &cfg, &mut Prng::new(1));
        (InferenceSession::new(model, store), ds)
    }

    #[test]
    fn predictions_are_probabilities_and_counted() {
        let (mut session, ds) = session();
        let batch = BatchIter::new(&ds, 16, 0, false).next().unwrap();
        let preds = session.predict_batch(&batch);
        assert_eq!(preds.len(), batch.batch_size);
        for p in &preds {
            assert!((0.0..=1.0).contains(&p.fake_prob));
            assert!(p.logits.iter().all(|l| l.is_finite()));
            assert!(p.domain_scores.is_none(), "TextCNN has no domain branch");
        }
        assert_eq!(session.requests_served(), batch.batch_size as u64);
    }

    #[test]
    fn pool_warms_up_after_the_first_batch() {
        let (mut session, ds) = session();
        let batch = BatchIter::new(&ds, 8, 0, false).next().unwrap();
        session.predict_batch(&batch);
        let (_, misses_after_first) = session.pool_stats();
        session.predict_batch(&batch);
        session.predict_batch(&batch);
        let (hits, misses) = session.pool_stats();
        assert_eq!(misses, misses_after_first, "steady state allocates nothing");
        assert!(hits > 0);
    }

    #[test]
    fn single_requests_round_trip_through_the_encoder() {
        let (mut session, ds) = session();
        let item = &ds.items()[0];
        let encoded = session
            .encoder()
            .encode(&InferenceRequest::new(item.tokens.clone(), item.domain))
            .unwrap();
        let preds = session.predict_requests(&[encoded]);
        assert_eq!(preds.len(), 1);
        assert!((0.0..=1.0).contains(&preds[0].fake_prob));
    }
}
