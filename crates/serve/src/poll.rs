//! Readiness-polled connection backend: epoll via raw syscalls.
//!
//! This is the Linux default selected by
//! [`crate::http::ConnectionModel`]: one **event-loop thread** owns the
//! listener and every connection socket nonblocking, multiplexed through an
//! epoll instance built directly on the `epoll_create1` / `epoll_ctl` /
//! `epoll_pwait` syscalls (no `libc` — the workspace builds with zero
//! external crates, so the three shims below go through `core::arch::asm!`).
//! Idle keep-alive sockets cost one slab slot and one epoll registration
//! each, nothing else: tens of thousands of mostly-idle connections sit at
//! flat memory where the thread-per-connection pool would need as many
//! threads.
//!
//! # Per-connection state machine
//!
//! ```text
//!             accept                    head complete
//!   [idle] ----------> [reading-head] ----------------> [reading-body]
//!     ^  \__ first byte __/       |                           |
//!     |                           |   complete request        |
//!     |                           v                           v
//!  keep-alive <------------- [writing] <--------------- [dispatching]
//!  (buffered bytes re-enter reading;     response bytes from a dispatcher
//!   close instead when the response
//!   said `Connection: close`)
//! ```
//!
//! The loop feeds raw reads into the unchanged incremental
//! [`crate::http::RequestParser`]; a complete request is handed to a small
//! **dispatcher pool** (`connection_workers` threads) that runs the routing
//! and the blocking predict wait, then pushes the rendered response bytes
//! back for the event loop to write. One request is in flight per
//! connection at a time — pipelined bytes stay buffered in the parser until
//! the response is flushed, which also keeps responses in request order.
//!
//! # Deadlines
//!
//! Per-socket `set_read_timeout` cannot guard a nonblocking socket, so both
//! HTTP deadlines live on a [`crate::timer::TimerWheel`] owned by the loop:
//! the idle keep-alive `read_timeout` (fires → silent close) and the
//! slow-loris `request_timeout` (fires mid-request → `408`, fires mid-write
//! → close). Cancellation is lazy via per-connection generation counters.
//!
//! # Drain and shutdown
//!
//! [`crate::HttpServer::begin_drain`] wakes the loop (TCP self-pipe) and the
//! loop deregisters its **accept interest**: no new connections, while every
//! in-flight state machine — including open keep-alive connections — keeps
//! running. Shutdown additionally closes idle/reading connections, lets
//! dispatching/writing ones finish (their responses carry
//! `Connection: close`), and exits once the slab is empty; dropping the
//! dispatch channel then releases the dispatcher threads.

use crate::http::{
    error_body, response_bytes, route, Ctx, HttpRequest, HttpStats, ParseOutcome, RequestParser,
    CONTENT_TYPE_JSON, DRAIN_IDLE_DEADLINE,
};
use crate::telemetry::{Stage, TraceContext};
use crate::timer::TimerWheel;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Raw epoll syscall shims (no libc)
// ---------------------------------------------------------------------------

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0o2000000;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const CLOSE: usize = 57;
}

/// One readiness event as the kernel fills it in. x86_64 packs the struct
/// (the kernel ABI there has no padding between the 32-bit mask and the
/// 64-bit payload); other architectures use natural layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub(crate) struct EpollEvent {
    /// Readiness bits (`EPOLLIN` / `EPOLLOUT` / `EPOLLERR` / `EPOLLHUP`).
    pub(crate) events: u32,
    /// Caller-chosen token, returned verbatim.
    pub(crate) data: u64,
}

impl EpollEvent {
    pub(crate) fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }
}

/// Raw `syscall`/`svc` entry. Only the four syscalls named in `nr` are ever
/// issued, each with valid pointers/lengths owned by the caller.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn syscall6(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") nr as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "aarch64")]
#[allow(clippy::too_many_arguments)]
unsafe fn syscall6(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a1 as isize => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        options(nostack),
    );
    ret
}

/// Map the kernel's `-errno` convention onto `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// An epoll instance: register file descriptors with a `u64` token and a
/// readiness mask, then block in [`Poller::wait`] until something is ready.
pub(crate) struct Poller {
    epfd: i32,
}

impl Poller {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub(crate) fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved.
        let epfd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0) })?;
        Ok(Self { epfd: epfd as i32 })
    }

    fn ctl(&self, op: usize, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it out.
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.epfd as usize,
                op,
                fd as usize,
                std::ptr::addr_of_mut!(event) as usize,
                0,
            )
        })
        .map(|_| ())
    }

    /// Start watching `fd` for `events`, tagging reports with `token`.
    pub(crate) fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Replace the interest mask of a watched descriptor.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Stop watching a descriptor.
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until readiness or `timeout_ms` (−1 = forever); fills `events`
    /// and returns how many are valid. `EINTR` retries internally.
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the events buffer outlives the call and maxevents
            // matches its length; a null sigmask makes epoll_pwait behave
            // like plain epoll_wait (which aarch64 does not expose).
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.epfd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0,
                )
            };
            match check(ret) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: closing the fd we created; errors are unreportable here.
        let _ = unsafe { syscall6(nr::CLOSE, self.epfd as usize, 0, 0, 0, 0) };
    }
}

// ---------------------------------------------------------------------------
// Waking the loop from other threads
// ---------------------------------------------------------------------------

/// A TCP self-pipe on loopback: the read end is registered in the epoll set,
/// so one byte written here wakes a blocked [`Poller::wait`]. Std-only
/// (no `eventfd` shim needed); created once per server.
pub(crate) struct Waker {
    writer: Mutex<TcpStream>,
}

impl Waker {
    /// Nudge the event loop. A full pipe means wakeups are already pending,
    /// so `WouldBlock` (like every other error here) is ignorable.
    pub(crate) fn wake(&self) {
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.write(&[1]);
        }
    }
}

/// Build the loopback self-pipe: `(read_end, write_end)`.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let writer = TcpStream::connect(addr)?;
    let local = writer.local_addr()?;
    // Accept until we see our own connect — a stray scanner hitting the
    // ephemeral port must not become the wake channel.
    loop {
        let (reader, peer) = listener.accept()?;
        if peer == local {
            writer.set_nodelay(true)?;
            writer.set_nonblocking(true)?;
            return Ok((reader, writer));
        }
    }
}

// ---------------------------------------------------------------------------
// Connection slab
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Where a connection is in its request lifecycle (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Keep-alive between requests; only the idle deadline is armed.
    Idle,
    /// Bytes of a request head are (expected to be) arriving.
    ReadingHead,
    /// The head is complete; body bytes are arriving.
    ReadingBody,
    /// A parsed request sits with the dispatcher pool; no read interest, so
    /// pipelined bytes wait in the kernel buffer.
    Dispatching,
    /// Response bytes are being flushed.
    Writing,
}

struct Conn {
    stream: TcpStream,
    fd: RawFd,
    parser: RequestParser,
    state: State,
    /// Timer-wheel generation: bumped on every re-arm/cancel, so stale
    /// wheel entries are ignored when they fire.
    timer_gen: u64,
    /// Interest mask currently registered with the poller.
    interest: u32,
    out: Vec<u8>,
    out_pos: usize,
    keep_after_write: bool,
    /// First socket read of the current request (telemetry `http_parse`).
    parse_started: Option<Instant>,
    /// Response queued → flushed (telemetry `response_write`).
    write_started: Option<Instant>,
}

/// Slot-reusing connection store. Tokens are `index | generation << 32`:
/// a completion or timer for a connection that died and whose slot was
/// reused fails the generation check instead of hitting the new tenant.
struct Slab {
    entries: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> (usize, u64) {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx] = Some(conn);
                idx
            }
            None => {
                self.entries.push(Some(conn));
                self.gens.push(0);
                self.entries.len() - 1
            }
        };
        self.live += 1;
        (idx, self.token_of(idx))
    }

    fn token_of(&self, idx: usize) -> u64 {
        idx as u64 | (u64::from(self.gens[idx]) << 32)
    }

    fn conn_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.entries.get_mut(idx).and_then(Option::as_mut)
    }

    /// The connection at `idx`, only if its slot generation still matches.
    fn get_checked(&mut self, idx: usize, gen: u32) -> Option<&mut Conn> {
        if self.gens.get(idx) != Some(&gen) {
            return None;
        }
        self.conn_mut(idx)
    }

    fn remove(&mut self, idx: usize) -> Option<Conn> {
        let conn = self.entries.get_mut(idx)?.take()?;
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        Some(conn)
    }

    fn live_indices(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.is_some().then_some(i))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Dispatcher pool
// ---------------------------------------------------------------------------

struct Job {
    token: u64,
    request: Box<HttpRequest>,
    /// When the event loop handed the request off (telemetry `queue_wait`:
    /// under this backend the span covers dispatch-queue **readiness wait**,
    /// merged with the workers' batch-queue waits in snapshots).
    enqueued: Option<Instant>,
}

struct Done {
    token: u64,
    bytes: Vec<u8>,
    keep: bool,
}

#[derive(Default)]
struct Completions {
    done: Mutex<Vec<Done>>,
}

fn dispatcher(
    ctx: Arc<Ctx>,
    rx: Arc<Mutex<Receiver<Job>>>,
    completions: Arc<Completions>,
    waker: Arc<Waker>,
) {
    let trace = ctx.default_model().trace();
    loop {
        // Hold the lock only to pull the next job.
        let job = match rx.lock().expect("dispatch queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // event loop gone and queue drained
        };
        if let Some(enqueued) = job.enqueued {
            trace.record_ns(Stage::QueueWait, enqueued.elapsed().as_nanos() as u64);
        }
        let (status, body, content_type, extra) = route(&job.request, &ctx);
        ctx.stats.count_response(status);
        // During drain or shutdown the response still goes out, but with
        // `Connection: close` so a busy keep-alive client cannot hold the
        // event loop's exit hostage or keep hammering a drained listener.
        let keep = job.request.keep_alive && !ctx.draining_or_shutdown();
        let bytes = response_bytes(status, &body, content_type, keep, &extra);
        completions
            .done
            .lock()
            .expect("completions poisoned")
            .push(Done {
                token: job.token,
                bytes,
                keep,
            });
        waker.wake();
    }
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

/// Handles of a running epoll backend, joined by `HttpServer::shutdown`.
pub(crate) struct EpollBackend {
    pub(crate) event_loop: Option<JoinHandle<()>>,
    pub(crate) dispatchers: Vec<JoinHandle<()>>,
    pub(crate) waker: Arc<Waker>,
}

/// Firing granularity of the connection deadlines (both timeouts are
/// rounded up to the next 10 ms boundary — the usual timer-wheel trade).
const TIMER_TICK: Duration = Duration::from_millis(10);
const TIMER_SLOTS: usize = 1024;
/// Bound on consecutive reads per readiness event so one fast sender cannot
/// monopolize the loop; level-triggered epoll re-reports the leftovers.
const MAX_READS_PER_EVENT: usize = 16;

/// Spawn the event loop and its dispatcher pool over an already-bound
/// listener.
pub(crate) fn start(listener: TcpListener, ctx: Arc<Ctx>) -> io::Result<EpollBackend> {
    let poller = Poller::new()?;
    let (wake_rx, wake_tx) = wake_pair()?;
    let waker = Arc::new(Waker {
        writer: Mutex::new(wake_tx),
    });
    let completions = Arc::new(Completions::default());
    // Same shed threshold as the pool backend: `backlog` queued requests on
    // top of one in flight per dispatcher, 503 beyond.
    let capacity = ctx.config.backlog + ctx.config.connection_workers;
    let (dispatch_tx, dispatch_rx) = mpsc::sync_channel::<Job>(capacity);
    let dispatch_rx = Arc::new(Mutex::new(dispatch_rx));
    let dispatchers = (0..ctx.config.connection_workers)
        .map(|_| {
            let ctx = Arc::clone(&ctx);
            let rx = Arc::clone(&dispatch_rx);
            let completions = Arc::clone(&completions);
            let waker = Arc::clone(&waker);
            thread::spawn(move || dispatcher(ctx, rx, completions, waker))
        })
        .collect();
    let event_loop = {
        let trace = ctx.default_model().trace();
        let mut event_loop = EventLoop {
            listener,
            wake_rx,
            poller,
            ctx,
            trace,
            slab: Slab::new(),
            wheel: TimerWheel::new(TIMER_TICK, TIMER_SLOTS),
            dispatch_tx,
            completions,
            accepting: true,
            in_flight: 0,
        };
        thread::spawn(move || event_loop.run())
    };
    Ok(EpollBackend {
        event_loop: Some(event_loop),
        dispatchers,
        waker,
    })
}

struct EventLoop {
    listener: TcpListener,
    wake_rx: TcpStream,
    poller: Poller,
    ctx: Arc<Ctx>,
    trace: TraceContext,
    slab: Slab,
    wheel: TimerWheel,
    dispatch_tx: SyncSender<Job>,
    completions: Arc<Completions>,
    accepting: bool,
    /// Requests handed to the dispatchers whose completions have not been
    /// applied yet; the loop only exits once this drains.
    in_flight: usize,
}

impl EventLoop {
    fn run(&mut self) {
        if self.listener.set_nonblocking(true).is_err()
            || self.wake_rx.set_nonblocking(true).is_err()
        {
            return;
        }
        let listener_fd = self.listener.as_raw_fd();
        if self
            .poller
            .add(listener_fd, TOKEN_LISTENER, EPOLLIN)
            .is_err()
            || self
                .poller
                .add(self.wake_rx.as_raw_fd(), TOKEN_WAKE, EPOLLIN)
                .is_err()
        {
            return;
        }
        let mut events = vec![EpollEvent::zeroed(); 256];
        loop {
            self.ctx
                .stats
                .timers_armed
                .store(self.wheel.armed() as u64, Ordering::Relaxed);
            let timeout = match self.wheel.poll_timeout_ms(Instant::now()) {
                Some(ms) => ms.min(i32::MAX as u64) as i32,
                None => -1,
            };
            let n = self.poller.wait(&mut events, timeout).unwrap_or(0);
            let mut accept_ready = false;
            for ev in &events[..n] {
                let token = ev.data;
                let bits = ev.events;
                match token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKE => self.drain_wake(),
                    _ => self.conn_event(token, bits),
                }
            }
            let done: Vec<Done> = {
                let mut guard = self.completions.done.lock().expect("completions poisoned");
                guard.drain(..).collect()
            };
            for d in done {
                self.apply_completion(d);
            }
            for (token, gen) in self.wheel.expired(Instant::now()) {
                self.fire_timer(token, gen);
            }
            // Drain (or shutdown) drops the accept interest: no new
            // connections, in-flight state machines keep running. Idle
            // keep-alive connections must not sit out the full read_timeout
            // against a drained listener, so their wheel deadlines are
            // re-armed to the short drain window — safe under the lazy
            // cancellation scheme (the superseded entry fires into a stale
            // timer generation and is ignored).
            let draining = self.ctx.draining_or_shutdown();
            if self.accepting && draining {
                let _ = self.poller.delete(listener_fd);
                self.accepting = false;
                let drain_idle = DRAIN_IDLE_DEADLINE.min(self.ctx.config.read_timeout);
                for idx in self.slab.live_indices() {
                    let idle = self
                        .slab
                        .conn_mut(idx)
                        .is_some_and(|conn| conn.state == State::Idle);
                    if idle {
                        self.arm_timer(idx, drain_idle);
                    }
                }
            }
            if accept_ready && self.accepting {
                self.accept_ready();
            }
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                for idx in self.slab.live_indices() {
                    let state = match self.slab.conn_mut(idx) {
                        Some(conn) => conn.state,
                        None => continue,
                    };
                    if matches!(state, State::Idle | State::ReadingHead | State::ReadingBody) {
                        self.close(idx);
                    }
                }
                if self.slab.live == 0 && self.in_flight == 0 {
                    return;
                }
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    HttpStats::bump(&self.ctx.stats.connections);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let conn = Conn {
                        stream,
                        fd,
                        parser: RequestParser::new(
                            self.ctx.config.max_head_bytes,
                            self.ctx.config.max_body_bytes,
                        ),
                        state: State::Idle,
                        timer_gen: 0,
                        interest: EPOLLIN,
                        out: Vec::new(),
                        out_pos: 0,
                        keep_after_write: false,
                        parse_started: None,
                        write_started: None,
                    };
                    let (idx, token) = self.slab.insert(conn);
                    if self.poller.add(fd, token, EPOLLIN).is_err() {
                        self.slab.remove(idx);
                        continue;
                    }
                    self.ctx
                        .stats
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                    self.arm_timer(idx, self.ctx.config.read_timeout);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock (drained) or transient accept error
            }
        }
    }

    fn conn_event(&mut self, token: u64, bits: u32) {
        let idx = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        let state = match self.slab.get_checked(idx, gen) {
            Some(conn) => conn.state,
            None => return,
        };
        let readable = bits & EPOLLIN != 0;
        let writable = bits & EPOLLOUT != 0;
        let broken = bits & (EPOLLERR | EPOLLHUP) != 0;
        match state {
            // Readable data is processed even alongside ERR/HUP: the read
            // path sees the error/EOF itself once the buffered bytes are
            // consumed, so nothing parseable is dropped.
            State::Idle | State::ReadingHead | State::ReadingBody if readable => self.do_read(idx),
            State::Writing if writable => self.try_write(idx),
            _ if broken => self.close(idx),
            _ => {}
        }
    }

    fn do_read(&mut self, idx: usize) {
        let mut buf = [0u8; 8192];
        for _ in 0..MAX_READS_PER_EVENT {
            let res = match self.slab.conn_mut(idx) {
                Some(conn) => conn.stream.read(&mut buf),
                None => return,
            };
            match res {
                Ok(0) => {
                    // Peer closed. Like the pool backend, a partial request
                    // dies with its connection.
                    self.close(idx);
                    return;
                }
                Ok(n) => {
                    let short = n < buf.len();
                    let was_idle = {
                        let trace_on = self.trace.is_enabled();
                        let conn = match self.slab.conn_mut(idx) {
                            Some(conn) => conn,
                            None => return,
                        };
                        if conn.parse_started.is_none() && trace_on {
                            conn.parse_started = Some(Instant::now());
                        }
                        conn.parser.feed(&buf[..n]);
                        let was_idle = conn.state == State::Idle;
                        if was_idle {
                            conn.state = State::ReadingHead;
                        }
                        if conn.state == State::ReadingHead && conn.parser.head_complete() {
                            conn.state = State::ReadingBody;
                        }
                        was_idle
                    };
                    if was_idle {
                        // First byte of a request: the idle deadline becomes
                        // the slow-loris deadline.
                        self.arm_timer(idx, self.ctx.config.request_timeout);
                    }
                    if self.advance_parse(idx) {
                        return;
                    }
                    if short {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// Try to parse one request out of the connection's buffer and move the
    /// state machine along. Returns `true` when the connection left the
    /// reading states (dispatched, answering an error, or closed).
    fn advance_parse(&mut self, idx: usize) -> bool {
        let outcome = match self.slab.conn_mut(idx) {
            Some(conn) => conn.parser.poll(),
            None => return true,
        };
        match outcome {
            ParseOutcome::NeedMore => false,
            ParseOutcome::Request(request) => {
                let parse_ns = self
                    .slab
                    .conn_mut(idx)
                    .and_then(|c| c.parse_started.take())
                    .map(|t0| t0.elapsed().as_nanos() as u64);
                if let Some(ns) = parse_ns {
                    self.trace.record_ns(Stage::HttpParse, ns);
                }
                self.cancel_timer(idx);
                if let Some(conn) = self.slab.conn_mut(idx) {
                    conn.state = State::Dispatching;
                }
                // No read interest while a request is in flight: pipelined
                // bytes wait in the kernel buffer instead of waking the loop.
                self.set_interest(idx, 0);
                let token = self.slab.token_of(idx);
                let enqueued = self.trace.is_enabled().then(Instant::now);
                let job = Job {
                    token,
                    request,
                    enqueued,
                };
                if self.dispatch_tx.try_send(job).is_err() {
                    // Dispatch queue saturated (or dispatchers dead): shed
                    // with a 503, mirroring the pool backend's accept shed.
                    HttpStats::bump(&self.ctx.stats.connections_rejected);
                    self.ctx.stats.count_response(503);
                    let body = error_body("overloaded", "dispatch queue saturated");
                    let retry = [(
                        "Retry-After",
                        self.ctx.retry_after(&self.ctx.default_model()).to_string(),
                    )];
                    let bytes = response_bytes(503, &body, CONTENT_TYPE_JSON, false, &retry);
                    self.queue_response(idx, bytes, false, false);
                } else {
                    self.in_flight += 1;
                }
                true
            }
            ParseOutcome::Failed(e) => {
                self.ctx.stats.count_response(e.status);
                let body = error_body(e.code, &e.message);
                let bytes = response_bytes(e.status, &body, CONTENT_TYPE_JSON, false, &[]);
                self.queue_response(idx, bytes, false, false);
                true
            }
        }
    }

    fn apply_completion(&mut self, done: Done) {
        self.in_flight = self.in_flight.saturating_sub(1);
        let idx = (done.token & 0xFFFF_FFFF) as usize;
        let gen = (done.token >> 32) as u32;
        if self.slab.get_checked(idx, gen).is_none() {
            return; // connection died while its request was in flight
        }
        self.queue_response(idx, done.bytes, done.keep, true);
    }

    /// Install response bytes and start flushing. `measure` arms the
    /// telemetry `response_write` span (routed responses only, matching the
    /// pool backend).
    fn queue_response(&mut self, idx: usize, bytes: Vec<u8>, keep: bool, measure: bool) {
        {
            let trace_on = self.trace.is_enabled();
            let conn = match self.slab.conn_mut(idx) {
                Some(conn) => conn,
                None => return,
            };
            conn.out = bytes;
            conn.out_pos = 0;
            conn.keep_after_write = keep;
            conn.state = State::Writing;
            conn.write_started = (measure && trace_on).then(Instant::now);
        }
        // A stalled reader is cut like a stalled sender.
        self.arm_timer(idx, self.ctx.config.request_timeout);
        self.set_interest(idx, 0);
        self.try_write(idx);
    }

    fn try_write(&mut self, idx: usize) {
        loop {
            let res = match self.slab.conn_mut(idx) {
                Some(conn) => {
                    let pos = conn.out_pos;
                    conn.stream.write(&conn.out[pos..])
                }
                None => return,
            };
            match res {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => {
                    let flushed = match self.slab.conn_mut(idx) {
                        Some(conn) => {
                            conn.out_pos += n;
                            conn.out_pos >= conn.out.len()
                        }
                        None => return,
                    };
                    if flushed {
                        self.finish_response(idx);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.set_interest(idx, EPOLLOUT);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    fn finish_response(&mut self, idx: usize) {
        let keep = {
            let conn = match self.slab.conn_mut(idx) {
                Some(conn) => conn,
                None => return,
            };
            if let Some(t0) = conn.write_started.take() {
                let ns = t0.elapsed().as_nanos() as u64;
                self.trace.record_ns(Stage::ResponseWrite, ns);
            }
            conn.out = Vec::new();
            conn.out_pos = 0;
            // Responses built before the drain flag flipped may still say
            // keep-alive; closing anyway is the benign race — a drained
            // listener releases every connection at its next response.
            conn.keep_after_write && !self.ctx.draining_or_shutdown()
        };
        if !keep {
            self.close(idx);
            return;
        }
        self.cancel_timer(idx);
        let buffered = match self.slab.conn_mut(idx) {
            Some(conn) => {
                conn.parse_started = None;
                conn.parser.buffered()
            }
            None => return,
        };
        if buffered > 0 {
            // Pipelined bytes: re-enter the reading states immediately (a
            // request parsed straight out of the buffer records no
            // http_parse span, matching the pool backend).
            if let Some(conn) = self.slab.conn_mut(idx) {
                conn.state = State::ReadingHead;
                if conn.parser.head_complete() {
                    conn.state = State::ReadingBody;
                }
            }
            self.arm_timer(idx, self.ctx.config.request_timeout);
            self.set_interest(idx, EPOLLIN);
            self.advance_parse(idx);
        } else {
            if let Some(conn) = self.slab.conn_mut(idx) {
                conn.state = State::Idle;
            }
            self.arm_timer(idx, self.ctx.config.read_timeout);
            self.set_interest(idx, EPOLLIN);
        }
    }

    fn fire_timer(&mut self, token: u64, gen: u64) {
        let idx = (token & 0xFFFF_FFFF) as usize;
        let slab_gen = (token >> 32) as u32;
        let state = match self.slab.get_checked(idx, slab_gen) {
            Some(conn) if conn.timer_gen == gen => conn.state,
            _ => return, // stale deadline: connection re-armed or is gone
        };
        match state {
            State::Idle => {
                HttpStats::bump(&self.ctx.stats.idle_timeouts);
                self.close(idx);
            }
            State::ReadingHead | State::ReadingBody => {
                HttpStats::bump(&self.ctx.stats.request_timeouts);
                self.ctx.stats.count_response(408);
                let body = error_body("request_timeout", "request took too long to arrive");
                let bytes = response_bytes(408, &body, CONTENT_TYPE_JSON, false, &[]);
                self.queue_response(idx, bytes, false, false);
            }
            // A response the peer refuses to drain is cut without ceremony.
            State::Writing => self.close(idx),
            State::Dispatching => {} // no deadline while predicting
        }
    }

    fn arm_timer(&mut self, idx: usize, after: Duration) {
        let token = self.slab.token_of(idx);
        if let Some(conn) = self.slab.conn_mut(idx) {
            conn.timer_gen += 1;
            let gen = conn.timer_gen;
            self.wheel.schedule(Instant::now(), after, token, gen);
        }
    }

    fn cancel_timer(&mut self, idx: usize) {
        if let Some(conn) = self.slab.conn_mut(idx) {
            conn.timer_gen += 1; // the wheel entry fires into a stale gen
        }
    }

    fn set_interest(&mut self, idx: usize, events: u32) {
        let token = self.slab.token_of(idx);
        let (fd, current) = match self.slab.conn_mut(idx) {
            Some(conn) => (conn.fd, conn.interest),
            None => return,
        };
        if current == events {
            return;
        }
        if self.poller.modify(fd, token, events).is_ok() {
            if let Some(conn) = self.slab.conn_mut(idx) {
                conn.interest = events;
            }
        } else {
            self.close(idx);
        }
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.slab.remove(idx) {
            let _ = self.poller.delete(conn.fd);
            self.ctx
                .stats
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
            // Dropping `conn` closes the socket.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poller_reports_readiness_and_honours_interest_changes() {
        let (rx, mut tx) = wake_pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(rx.as_raw_fd(), 42, EPOLLIN).unwrap();
        let mut events = vec![EpollEvent::zeroed(); 4];
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "nothing pending");

        tx.write_all(&[1]).unwrap();
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        let bits = events[0].events;
        assert_eq!(data, 42, "token round-trips through the kernel");
        assert_ne!(bits & EPOLLIN, 0, "readable byte reported");

        // Empty interest mask: the pending byte no longer wakes us.
        poller.modify(rx.as_raw_fd(), 42, 0).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        poller.modify(rx.as_raw_fd(), 42, EPOLLIN).unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        poller.delete(rx.as_raw_fd()).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let (rx, tx) = wake_pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(rx.as_raw_fd(), TOKEN_WAKE, EPOLLIN).unwrap();
        let waker = Waker {
            writer: Mutex::new(tx),
        };
        waker.wake();
        waker.wake(); // coalesces, never blocks
        let mut events = vec![EpollEvent::zeroed(); 4];
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, TOKEN_WAKE);
    }

    #[test]
    fn slab_generations_invalidate_stale_tokens() {
        // A pure-slab test (no sockets): tokens from a removed slot must not
        // resolve to the slot's next tenant.
        let mut slab = Slab::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mk = || {
            let stream = TcpStream::connect(addr).unwrap();
            let fd = stream.as_raw_fd();
            Conn {
                stream,
                fd,
                parser: RequestParser::new(1024, 1024),
                state: State::Idle,
                timer_gen: 0,
                interest: EPOLLIN,
                out: Vec::new(),
                out_pos: 0,
                keep_after_write: false,
                parse_started: None,
                write_started: None,
            }
        };
        let (idx, token) = slab.insert(mk());
        assert!(slab.get_checked(idx, (token >> 32) as u32).is_some());
        slab.remove(idx);
        assert!(
            slab.get_checked(idx, (token >> 32) as u32).is_none(),
            "stale generation must not resolve"
        );
        let (idx2, token2) = slab.insert(mk());
        assert_eq!(idx2, idx, "slot is reused");
        assert_ne!(token2, token, "but under a fresh generation");
        assert!(slab.get_checked(idx2, (token2 >> 32) as u32).is_some());
        assert_eq!(slab.live, 1);
    }
}
