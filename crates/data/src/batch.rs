//! Mini-batch assembly.

use crate::dataset::MultiDomainDataset;
use crate::generator::{NewsItem, EMOTION_DIM, STYLE_DIM};
use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::Tensor;

/// A mini-batch in the exact form the models consume.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Flattened `[batch, seq_len]` token ids.
    pub token_ids: Vec<u32>,
    /// Number of items in the batch.
    pub batch_size: usize,
    /// Token sequence length.
    pub seq_len: usize,
    /// Veracity labels (`0` real / `1` fake).
    pub labels: Vec<usize>,
    /// Hard domain labels.
    pub domains: Vec<usize>,
    /// Style side-features, `[batch, STYLE_DIM]`.
    pub style: Tensor,
    /// Emotion side-features, `[batch, EMOTION_DIM]`.
    pub emotion: Tensor,
    /// Indices of the items in the source dataset (for bookkeeping).
    pub indices: Vec<usize>,
}

impl Batch {
    /// Assemble a batch from dataset items (`indices` refer to the items'
    /// positions in the source dataset and are carried along for metrics).
    pub fn from_items(items: &[&NewsItem], indices: Vec<usize>, seq_len: usize) -> Self {
        assert!(!items.is_empty(), "empty batch");
        assert_eq!(items.len(), indices.len());
        let batch_size = items.len();
        let mut token_ids = Vec::with_capacity(batch_size * seq_len);
        let mut labels = Vec::with_capacity(batch_size);
        let mut domains = Vec::with_capacity(batch_size);
        let mut style = Vec::with_capacity(batch_size * STYLE_DIM);
        let mut emotion = Vec::with_capacity(batch_size * EMOTION_DIM);
        for item in items {
            assert_eq!(item.tokens.len(), seq_len, "sequence length mismatch");
            token_ids.extend_from_slice(&item.tokens);
            labels.push(item.label);
            domains.push(item.domain);
            style.extend_from_slice(&item.style);
            emotion.extend_from_slice(&item.emotion);
        }
        Self {
            token_ids,
            batch_size,
            seq_len,
            labels,
            domains,
            style: Tensor::new(vec![batch_size, STYLE_DIM], style),
            emotion: Tensor::new(vec![batch_size, EMOTION_DIM], emotion),
            indices,
        }
    }

    /// Build one batch containing the whole dataset (used for evaluation of
    /// small test sets).
    pub fn full(dataset: &MultiDomainDataset) -> Self {
        let items: Vec<&NewsItem> = dataset.items().iter().collect();
        let indices: Vec<usize> = (0..dataset.len()).collect();
        Self::from_items(&items, indices, dataset.seq_len())
    }

    /// Fraction of fake labels in the batch.
    pub fn fake_rate(&self) -> f32 {
        self.labels.iter().sum::<usize>() as f32 / self.batch_size as f32
    }
}

/// Iterator over shuffled mini-batches of a dataset.
pub struct BatchIter<'a> {
    dataset: &'a MultiDomainDataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    drop_last: bool,
}

impl<'a> BatchIter<'a> {
    /// Create an iterator with a fresh shuffle.
    pub fn new(
        dataset: &'a MultiDomainDataset,
        batch_size: usize,
        seed: u64,
        drop_last: bool,
    ) -> Self {
        assert!(batch_size > 0);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        Prng::new(seed).shuffle(&mut order);
        Self {
            dataset,
            order,
            batch_size,
            cursor: 0,
            drop_last,
        }
    }

    /// Number of batches this iterator will yield.
    pub fn n_batches(&self) -> usize {
        if self.drop_last {
            self.dataset.len() / self.batch_size
        } else {
            self.dataset.len().div_ceil(self.batch_size)
        }
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        if self.drop_last && end - self.cursor < self.batch_size {
            return None;
        }
        let indices: Vec<usize> = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        let items: Vec<&NewsItem> = indices.iter().map(|&i| &self.dataset.items()[i]).collect();
        Some(Batch::from_items(&items, indices, self.dataset.seq_len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::english_spec;
    use crate::generator::{GeneratorConfig, NewsGenerator};

    fn dataset() -> MultiDomainDataset {
        NewsGenerator::new(english_spec(), GeneratorConfig::tiny()).generate_scaled(1, 0.01)
    }

    #[test]
    fn batches_cover_the_whole_dataset_exactly_once() {
        let ds = dataset();
        let iter = BatchIter::new(&ds, 32, 7, false);
        let expected_batches = iter.n_batches();
        let mut seen = vec![false; ds.len()];
        let mut count = 0usize;
        for batch in iter {
            count += 1;
            assert!(batch.batch_size <= 32);
            for &idx in &batch.indices {
                assert!(!seen[idx], "index {idx} repeated");
                seen[idx] = true;
            }
        }
        assert_eq!(count, expected_batches);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn drop_last_skips_partial_batches() {
        let ds = dataset();
        let total: usize = BatchIter::new(&ds, 32, 7, true).map(|b| b.batch_size).sum();
        assert_eq!(total, (ds.len() / 32) * 32);
    }

    #[test]
    fn batch_tensors_have_matching_shapes() {
        let ds = dataset();
        let batch = BatchIter::new(&ds, 16, 3, false).next().unwrap();
        assert_eq!(batch.token_ids.len(), batch.batch_size * batch.seq_len);
        assert_eq!(batch.style.shape(), &[batch.batch_size, STYLE_DIM]);
        assert_eq!(batch.emotion.shape(), &[batch.batch_size, EMOTION_DIM]);
        assert_eq!(batch.labels.len(), batch.batch_size);
        assert_eq!(batch.domains.len(), batch.batch_size);
    }

    #[test]
    fn full_batch_contains_every_item_in_order() {
        let ds = dataset();
        let batch = Batch::full(&ds);
        assert_eq!(batch.batch_size, ds.len());
        assert_eq!(batch.indices, (0..ds.len()).collect::<Vec<_>>());
        assert_eq!(batch.labels[0], ds.items()[0].label);
    }

    #[test]
    fn shuffling_differs_between_seeds_but_is_reproducible() {
        let ds = dataset();
        let order = |seed: u64| BatchIter::new(&ds, 8, seed, false).next().unwrap().indices;
        assert_eq!(order(1), order(1));
        assert_ne!(order(1), order(2));
    }

    #[test]
    fn fake_rate_reflects_labels() {
        let ds = dataset();
        let batch = Batch::full(&ds);
        let manual = ds.items().iter().filter(|i| i.is_fake()).count() as f32 / ds.len() as f32;
        assert!((batch.fake_rate() - manual).abs() < 1e-6);
    }
}
