//! # dtdbd-data
//!
//! The multi-domain news corpus substrate of the DTDBD reproduction.
//!
//! The original paper evaluates on the Weibo21 Chinese corpus (9 domains,
//! 9,128 items) and on an English corpus merging FakeNewsNet and MM-COVID
//! (3 domains, 28,764 items). Those corpora cannot be redistributed here, so
//! this crate provides *synthetic* corpora whose per-domain sizes and
//! fake-news ratios match the paper's Tables I, IV and V exactly, and whose
//! generative process reproduces the phenomenon the paper studies:
//!
//! * **content cues of bounded reliability** — every item carries veracity
//!   cue tokens, but a tunable fraction of items is ambiguous, so a model
//!   that wants to minimise training loss is tempted to fall back on the
//!   domain prior;
//! * **unbalanced domain priors** — the per-domain fake rates range from
//!   27% (finance) to 76% (disaster), exactly as in Weibo21, which is what
//!   turns the domain shortcut into *domain bias* (high FPR in fake-heavy
//!   domains, high FNR in real-heavy domains — Table III);
//! * **domain-specific cue dialects** — part of each item's cues come from a
//!   per-domain vocabulary, so domain knowledge genuinely helps performance
//!   (the reason MDFEND/M3FEND beat single-domain baselines, and the reason
//!   plain domain-adversarial training hurts F1);
//! * **cross-domain topic overlap** — domains share topic groups (disaster ↔
//!   society, politics ↔ military, ...) so a news item can be related to
//!   several domains, motivating fuzzy domain labels (paper Sec. IV-B2);
//! * **emotion and style side-features** — fake items carry systematically
//!   more sensational style and higher-arousal emotion features, which is
//!   what StyleLSTM / DualEmo / M3FEND consume.
//!
//! See `DESIGN.md` ("Substitutions") for the full argument of why this
//! preserves the behaviour the paper measures.

pub mod batch;
pub mod dataset;
pub mod domain;
pub mod generator;
pub mod request;
pub mod vocab;

pub use batch::{Batch, BatchIter};
pub use dataset::{DatasetStats, MultiDomainDataset, Split};
pub use domain::{english_spec, weibo21_spec, CorpusSpec, DomainSpec};
pub use generator::{GeneratorConfig, NewsGenerator, NewsItem};
pub use request::{EncodedRequest, InferenceRequest, RequestEncoder, RequestError};
pub use vocab::Vocabulary;
