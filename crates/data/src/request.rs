//! Single-item tokenization for serving requests.
//!
//! Training data arrives pre-shaped from the corpus generator, but a serving
//! process receives one item at a time, with token sequences of arbitrary
//! length and often without side-features. [`RequestEncoder`] validates each
//! raw request against the corpus geometry (vocabulary size, domain count),
//! pads or truncates it to the model's fixed sequence length, fills in
//! neutral side-features, and assembles any number of encoded requests into
//! the exact [`Batch`] form every model consumes — which is what lets the
//! micro-batching server coalesce single predictions into one forward pass.

use crate::batch::Batch;
use crate::dataset::MultiDomainDataset;
use crate::domain::CorpusSpec;
use crate::generator::{EMOTION_DIM, STYLE_DIM};
use crate::vocab::Vocabulary;
use dtdbd_tensor::Tensor;
use std::fmt;

/// A raw prediction request as a client would submit it.
#[derive(Debug, Clone, Default)]
pub struct InferenceRequest {
    /// Token ids of the news item (any length ≥ 1; padded / truncated by the
    /// encoder).
    pub tokens: Vec<u32>,
    /// Hard domain label. Required because the domain-aware models (MDFEND,
    /// M3FEND, ...) consume it as an input.
    pub domain: usize,
    /// Optional style side-features (`STYLE_DIM` values); neutral zeros when
    /// absent.
    pub style: Option<Vec<f32>>,
    /// Optional emotion side-features (`EMOTION_DIM` values); neutral zeros
    /// when absent.
    pub emotion: Option<Vec<f32>>,
}

impl InferenceRequest {
    /// A minimal request: tokens plus domain.
    pub fn new(tokens: Vec<u32>, domain: usize) -> Self {
        Self {
            tokens,
            domain,
            style: None,
            emotion: None,
        }
    }

    /// Domain extraction on the request path: build a request from a
    /// *named* domain, resolved (case-insensitively) against the corpus
    /// specification — what an API gateway does when clients send
    /// `"Society"` instead of a numeric label. `None` when the corpus has
    /// no domain of that name (callers map this to a
    /// [`RequestError::DomainOutOfRange`]-style rejection).
    pub fn for_named_domain(tokens: Vec<u32>, domain: &str, spec: &CorpusSpec) -> Option<Self> {
        spec.domain_index(domain)
            .map(|domain| Self::new(tokens, domain))
    }
}

/// Why a raw request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The token sequence was empty.
    EmptyTokens,
    /// A token id exceeds the vocabulary.
    TokenOutOfRange {
        /// The offending token id.
        token: u32,
        /// Exclusive vocabulary bound.
        vocab_size: usize,
    },
    /// The domain label exceeds the corpus's domain count.
    DomainOutOfRange {
        /// The offending domain label.
        domain: usize,
        /// Number of domains.
        n_domains: usize,
    },
    /// A side-feature vector has the wrong length.
    SideFeatureLength {
        /// `"style"` or `"emotion"`.
        which: &'static str,
        /// Received length.
        got: usize,
        /// Required length.
        expected: usize,
    },
    /// A side-feature value is NaN or infinite.
    SideFeatureNonFinite {
        /// `"style"` or `"emotion"`.
        which: &'static str,
    },
}

impl RequestError {
    /// Stable machine-readable code for this rejection, as carried in the
    /// `"error"` field of the HTTP front-end's JSON error bodies. These are
    /// wire protocol: never renamed, only added to.
    pub fn wire_code(&self) -> &'static str {
        match self {
            Self::EmptyTokens => "empty_tokens",
            Self::TokenOutOfRange { .. } => "token_out_of_range",
            Self::DomainOutOfRange { .. } => "domain_out_of_range",
            Self::SideFeatureLength { .. } => "side_feature_length",
            Self::SideFeatureNonFinite { .. } => "side_feature_non_finite",
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTokens => write!(f, "request has no tokens"),
            Self::TokenOutOfRange { token, vocab_size } => {
                write!(f, "token id {token} out of vocabulary ({vocab_size})")
            }
            Self::DomainOutOfRange { domain, n_domains } => {
                write!(f, "domain {domain} out of range ({n_domains} domains)")
            }
            Self::SideFeatureLength {
                which,
                got,
                expected,
            } => {
                write!(f, "{which} features have length {got}, expected {expected}")
            }
            Self::SideFeatureNonFinite { which } => {
                write!(f, "{which} features contain a non-finite value")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// A validated request, shaped to the corpus geometry and ready to batch.
#[derive(Debug, Clone)]
pub struct EncodedRequest {
    tokens: Vec<u32>,
    domain: usize,
    style: Vec<f32>,
    emotion: Vec<f32>,
}

impl EncodedRequest {
    /// The padded / truncated token sequence (`seq_len` entries).
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// The validated domain label.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The shaped style side-features (`STYLE_DIM` values, zeros when the
    /// request carried none).
    pub fn style(&self) -> &[f32] {
        &self.style
    }

    /// The shaped emotion side-features (`EMOTION_DIM` values, zeros when
    /// the request carried none).
    pub fn emotion(&self) -> &[f32] {
        &self.emotion
    }
}

/// Validates and shapes raw requests for a particular corpus geometry.
#[derive(Debug, Clone)]
pub struct RequestEncoder {
    vocab_size: usize,
    seq_len: usize,
    n_domains: usize,
}

impl RequestEncoder {
    /// An encoder for an explicit geometry.
    pub fn new(vocab_size: usize, seq_len: usize, n_domains: usize) -> Self {
        assert!(seq_len > 0, "sequence length must be positive");
        Self {
            vocab_size,
            seq_len,
            n_domains,
        }
    }

    /// An encoder matching a dataset's geometry.
    pub fn for_dataset(dataset: &MultiDomainDataset) -> Self {
        Self::new(
            dataset.vocabulary().size(),
            dataset.seq_len(),
            dataset.n_domains(),
        )
    }

    /// The fixed sequence length requests are shaped to.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Number of domains a request may name.
    pub fn n_domains(&self) -> usize {
        self.n_domains
    }

    /// Validate a raw request and shape it: tokens are truncated to
    /// `seq_len` or right-padded with [`Vocabulary::PAD`], absent
    /// side-features become neutral zeros.
    pub fn encode(&self, request: &InferenceRequest) -> Result<EncodedRequest, RequestError> {
        if request.tokens.is_empty() {
            return Err(RequestError::EmptyTokens);
        }
        if let Some(&token) = request
            .tokens
            .iter()
            .find(|&&t| t as usize >= self.vocab_size)
        {
            return Err(RequestError::TokenOutOfRange {
                token,
                vocab_size: self.vocab_size,
            });
        }
        if request.domain >= self.n_domains {
            return Err(RequestError::DomainOutOfRange {
                domain: request.domain,
                n_domains: self.n_domains,
            });
        }
        let style = Self::side_feature("style", request.style.as_deref(), STYLE_DIM)?;
        let emotion = Self::side_feature("emotion", request.emotion.as_deref(), EMOTION_DIM)?;
        let mut tokens = request.tokens.clone();
        tokens.truncate(self.seq_len);
        tokens.resize(self.seq_len, Vocabulary::PAD);
        Ok(EncodedRequest {
            tokens,
            domain: request.domain,
            style,
            emotion,
        })
    }

    fn side_feature(
        which: &'static str,
        given: Option<&[f32]>,
        dim: usize,
    ) -> Result<Vec<f32>, RequestError> {
        match given {
            None => Ok(vec![0.0; dim]),
            Some(values) => {
                if values.len() != dim {
                    return Err(RequestError::SideFeatureLength {
                        which,
                        got: values.len(),
                        expected: dim,
                    });
                }
                if values.iter().any(|v| !v.is_finite()) {
                    return Err(RequestError::SideFeatureNonFinite { which });
                }
                Ok(values.to_vec())
            }
        }
    }

    /// Per-domain request counts over a traffic slice: `result[d]` is how
    /// many of `requests` name domain `d`. The domain router and the
    /// sharding bench use this to quantify traffic skew (and to size
    /// specialist groups against real request mixes), and the serving
    /// drift telemetry compares the live version of this mix — plus the
    /// per-domain prediction distributions — against a training-time
    /// `DomainBaseline` frozen into the checkpoint (`dtdbd-serve`'s
    /// `telemetry` module).
    pub fn domain_histogram(&self, requests: &[EncodedRequest]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_domains];
        for request in requests {
            counts[request.domain] += 1;
        }
        counts
    }

    /// Assemble encoded requests into the [`Batch`] form the models consume.
    /// Veracity labels are unknown at serving time and filled with zeros
    /// (they only feed training losses, never a forward pass).
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn batch(&self, requests: &[EncodedRequest]) -> Batch {
        assert!(!requests.is_empty(), "cannot batch zero requests");
        let batch_size = requests.len();
        let mut token_ids = Vec::with_capacity(batch_size * self.seq_len);
        let mut domains = Vec::with_capacity(batch_size);
        let mut style = Vec::with_capacity(batch_size * STYLE_DIM);
        let mut emotion = Vec::with_capacity(batch_size * EMOTION_DIM);
        for request in requests {
            debug_assert_eq!(request.tokens.len(), self.seq_len);
            token_ids.extend_from_slice(&request.tokens);
            domains.push(request.domain);
            style.extend_from_slice(&request.style);
            emotion.extend_from_slice(&request.emotion);
        }
        Batch {
            token_ids,
            batch_size,
            seq_len: self.seq_len,
            labels: vec![0; batch_size],
            domains,
            style: Tensor::new(vec![batch_size, STYLE_DIM], style),
            emotion: Tensor::new(vec![batch_size, EMOTION_DIM], emotion),
            indices: (0..batch_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> RequestEncoder {
        RequestEncoder::new(100, 8, 3)
    }

    #[test]
    fn short_sequences_are_padded_and_long_ones_truncated() {
        let enc = encoder();
        let short = enc.encode(&InferenceRequest::new(vec![5, 6], 1)).unwrap();
        assert_eq!(short.tokens(), &[5, 6, 0, 0, 0, 0, 0, 0]);
        let long = enc
            .encode(&InferenceRequest::new((1..=20).collect(), 2))
            .unwrap();
        assert_eq!(long.tokens().len(), 8);
        assert_eq!(long.tokens()[7], 8);
    }

    #[test]
    fn invalid_requests_are_rejected_with_the_right_error() {
        let enc = encoder();
        assert_eq!(
            enc.encode(&InferenceRequest::new(vec![], 0)).unwrap_err(),
            RequestError::EmptyTokens
        );
        assert_eq!(
            enc.encode(&InferenceRequest::new(vec![100], 0))
                .unwrap_err(),
            RequestError::TokenOutOfRange {
                token: 100,
                vocab_size: 100
            }
        );
        assert_eq!(
            enc.encode(&InferenceRequest::new(vec![1], 3)).unwrap_err(),
            RequestError::DomainOutOfRange {
                domain: 3,
                n_domains: 3
            }
        );
        let bad_style = InferenceRequest {
            style: Some(vec![0.0; 3]),
            ..InferenceRequest::new(vec![1], 0)
        };
        assert!(matches!(
            enc.encode(&bad_style),
            Err(RequestError::SideFeatureLength { which: "style", .. })
        ));
        let bad_emotion = InferenceRequest {
            emotion: Some(vec![f32::NAN; EMOTION_DIM]),
            ..InferenceRequest::new(vec![1], 0)
        };
        assert!(matches!(
            enc.encode(&bad_emotion),
            Err(RequestError::SideFeatureNonFinite { which: "emotion" })
        ));
    }

    #[test]
    fn wire_codes_are_distinct_and_stable() {
        let errors = [
            RequestError::EmptyTokens,
            RequestError::TokenOutOfRange {
                token: 1,
                vocab_size: 1,
            },
            RequestError::DomainOutOfRange {
                domain: 1,
                n_domains: 1,
            },
            RequestError::SideFeatureLength {
                which: "style",
                got: 1,
                expected: 2,
            },
            RequestError::SideFeatureNonFinite { which: "emotion" },
        ];
        let codes: Vec<&str> = errors.iter().map(RequestError::wire_code).collect();
        assert_eq!(
            codes,
            vec![
                "empty_tokens",
                "token_out_of_range",
                "domain_out_of_range",
                "side_feature_length",
                "side_feature_non_finite",
            ]
        );
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn batch_has_the_exact_training_shape() {
        let enc = encoder();
        let reqs: Vec<EncodedRequest> = (0..5)
            .map(|i| {
                enc.encode(&InferenceRequest::new(vec![i + 1], i as usize % 3))
                    .unwrap()
            })
            .collect();
        let batch = enc.batch(&reqs);
        assert_eq!(batch.batch_size, 5);
        assert_eq!(batch.seq_len, 8);
        assert_eq!(batch.token_ids.len(), 40);
        assert_eq!(batch.domains, vec![0, 1, 2, 0, 1]);
        assert_eq!(batch.labels, vec![0; 5]);
        assert_eq!(batch.style.shape(), &[5, STYLE_DIM]);
        assert_eq!(batch.emotion.shape(), &[5, EMOTION_DIM]);
        assert_eq!(batch.indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn provided_side_features_are_carried_through() {
        let enc = encoder();
        let style: Vec<f32> = (0..STYLE_DIM).map(|i| i as f32).collect();
        let req = InferenceRequest {
            style: Some(style.clone()),
            ..InferenceRequest::new(vec![1], 0)
        };
        let encoded = enc.encode(&req).unwrap();
        let batch = enc.batch(std::slice::from_ref(&encoded));
        assert_eq!(batch.style.row(0), style.as_slice());
        assert!(batch.emotion.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn named_domains_resolve_against_the_corpus_spec() {
        use crate::domain::weibo21_spec;
        let spec = weibo21_spec();
        let request = InferenceRequest::for_named_domain(vec![1, 2], "Society", &spec).unwrap();
        assert_eq!(request.domain, 8);
        assert_eq!(request.tokens, vec![1, 2]);
        // Case-insensitive, like CorpusSpec::domain_index.
        let lower = InferenceRequest::for_named_domain(vec![1], "sOcIeTy", &spec).unwrap();
        assert_eq!(lower.domain, 8);
        assert!(InferenceRequest::for_named_domain(vec![1], "Sports", &spec).is_none());
    }

    #[test]
    fn domain_histogram_counts_the_traffic_mix() {
        let enc = encoder();
        let requests: Vec<EncodedRequest> = [0usize, 1, 1, 2, 2, 2]
            .iter()
            .map(|&d| enc.encode(&InferenceRequest::new(vec![1], d)).unwrap())
            .collect();
        assert_eq!(enc.domain_histogram(&requests), vec![1, 2, 3]);
        assert_eq!(enc.domain_histogram(&[]), vec![0, 0, 0]);
    }

    #[test]
    fn encoder_matches_dataset_geometry() {
        use crate::domain::weibo21_spec;
        use crate::generator::{GeneratorConfig, NewsGenerator};
        let ds =
            NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny()).generate_scaled(1, 0.02);
        let enc = RequestEncoder::for_dataset(&ds);
        assert_eq!(enc.seq_len(), ds.seq_len());
        assert_eq!(enc.n_domains(), 9);
        // Every real item of the corpus is encodable as a request.
        let item = &ds.items()[0];
        let encoded = enc
            .encode(&InferenceRequest::new(item.tokens.clone(), item.domain))
            .unwrap();
        assert_eq!(encoded.tokens(), item.tokens.as_slice());
    }
}
