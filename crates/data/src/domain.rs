//! Domain and corpus specifications.
//!
//! The per-domain fake/real counts are copied verbatim from Table IV
//! (Weibo21, Chinese) and Table V (FakeNewsNet + COVID, English) of the
//! paper, so the generated corpora reproduce Tables I/IV/V exactly.

/// Specification of a single news domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSpec {
    /// Human-readable domain name (as printed in the paper's tables).
    pub name: &'static str,
    /// Number of fake news items in the domain.
    pub fake: usize,
    /// Number of real news items in the domain.
    pub real: usize,
    /// Topic-group mixture: indices into the corpus topic groups, in
    /// decreasing order of relevance. The first entry is the domain's "home"
    /// topic; later entries create cross-domain overlap.
    pub topic_groups: &'static [usize],
}

impl DomainSpec {
    /// Total number of items in the domain.
    pub fn total(&self) -> usize {
        self.fake + self.real
    }

    /// Fraction of items in the domain that are fake.
    pub fn fake_rate(&self) -> f64 {
        self.fake as f64 / self.total() as f64
    }
}

/// Specification of a whole multi-domain corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Corpus name (`"weibo21"` or `"english"`).
    pub name: &'static str,
    /// Per-domain specifications.
    pub domains: Vec<DomainSpec>,
    /// Number of distinct topic groups referenced by the domains.
    pub n_topic_groups: usize,
}

impl CorpusSpec {
    /// Number of domains.
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// Total number of items across all domains.
    pub fn total(&self) -> usize {
        self.domains.iter().map(DomainSpec::total).sum()
    }

    /// Total number of fake items across all domains.
    pub fn total_fake(&self) -> usize {
        self.domains.iter().map(|d| d.fake).sum()
    }

    /// Overall fake rate of the corpus.
    pub fn fake_rate(&self) -> f64 {
        self.total_fake() as f64 / self.total() as f64
    }

    /// Domain names in order.
    pub fn domain_names(&self) -> Vec<&'static str> {
        self.domains.iter().map(|d| d.name).collect()
    }

    /// Index of a domain by name (case-insensitive), if present.
    pub fn domain_index(&self, name: &str) -> Option<usize> {
        self.domains
            .iter()
            .position(|d| d.name.eq_ignore_ascii_case(name))
    }
}

/// The Weibo21-like Chinese corpus specification (Table IV of the paper).
///
/// Topic groups: 0 science/tech, 1 military/conflict, 2 education,
/// 3 disaster/accident, 4 politics/government, 5 health/medicine,
/// 6 finance/economy, 7 entertainment/celebrity, 8 society/daily life.
/// The overlaps encode the cross-domain correlations the paper discusses
/// (e.g. disaster news overlaps society and politics coverage).
pub fn weibo21_spec() -> CorpusSpec {
    CorpusSpec {
        name: "weibo21",
        n_topic_groups: 9,
        domains: vec![
            DomainSpec {
                name: "Science",
                fake: 93,
                real: 143,
                topic_groups: &[0, 5, 2],
            },
            DomainSpec {
                name: "Military",
                fake: 222,
                real: 121,
                topic_groups: &[1, 4, 0],
            },
            DomainSpec {
                name: "Education",
                fake: 248,
                real: 243,
                topic_groups: &[2, 8, 0],
            },
            DomainSpec {
                name: "Disaster",
                fake: 591,
                real: 185,
                topic_groups: &[3, 8, 4],
            },
            DomainSpec {
                name: "Politics",
                fake: 546,
                real: 306,
                topic_groups: &[4, 1, 8],
            },
            DomainSpec {
                name: "Health",
                fake: 515,
                real: 485,
                topic_groups: &[5, 0, 8],
            },
            DomainSpec {
                name: "Finance",
                fake: 362,
                real: 959,
                topic_groups: &[6, 4, 8],
            },
            DomainSpec {
                name: "Ent.",
                fake: 440,
                real: 1000,
                topic_groups: &[7, 8, 6],
            },
            DomainSpec {
                name: "Society",
                fake: 1471,
                real: 1198,
                topic_groups: &[8, 3, 7],
            },
        ],
    }
}

/// The English corpus specification (Table V of the paper): FakeNewsNet's
/// GossipCop and PolitiFact subsets merged with MM-COVID.
///
/// Topic groups: 0 celebrity/gossip, 1 politics, 2 pandemic/health,
/// with mild overlaps (political gossip, pandemic politics).
pub fn english_spec() -> CorpusSpec {
    CorpusSpec {
        name: "english",
        n_topic_groups: 3,
        domains: vec![
            DomainSpec {
                name: "Gossipcop",
                fake: 5067,
                real: 16804,
                topic_groups: &[0, 1],
            },
            DomainSpec {
                name: "Politifact",
                fake: 379,
                real: 447,
                topic_groups: &[1, 2],
            },
            DomainSpec {
                name: "COVID",
                fake: 1317,
                real: 4750,
                topic_groups: &[2, 1],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weibo21_totals_match_table_iv() {
        let spec = weibo21_spec();
        assert_eq!(spec.n_domains(), 9);
        assert_eq!(spec.total(), 9128);
        assert_eq!(spec.total_fake(), 4488);
        let disaster = &spec.domains[spec.domain_index("disaster").unwrap()];
        assert_eq!(disaster.total(), 776);
        assert!((disaster.fake_rate() - 0.761).abs() < 0.01);
        let finance = &spec.domains[spec.domain_index("finance").unwrap()];
        assert!((finance.fake_rate() - 0.274).abs() < 0.01);
    }

    #[test]
    fn weibo21_overall_fake_rate_matches_table_i() {
        let spec = weibo21_spec();
        // Table I reports ~51.0% fake on average (4488 fake / 9128 total = 49.2%;
        // the table's "Average" row averages per-domain rates). Check both views.
        assert!((spec.fake_rate() - 0.4917).abs() < 0.005);
        let mean_rate: f64 =
            spec.domains.iter().map(DomainSpec::fake_rate).sum::<f64>() / spec.n_domains() as f64;
        assert!(
            (mean_rate - 0.51).abs() < 0.03,
            "mean per-domain rate {mean_rate}"
        );
    }

    #[test]
    fn english_totals_match_table_v() {
        let spec = english_spec();
        assert_eq!(spec.n_domains(), 3);
        assert_eq!(spec.total(), 28_764);
        assert_eq!(spec.total_fake(), 6763);
        assert_eq!(spec.domains[0].total(), 21_871);
        assert_eq!(spec.domains[1].total(), 826);
        assert_eq!(spec.domains[2].total(), 6067);
    }

    #[test]
    fn every_domain_references_valid_topic_groups() {
        for spec in [weibo21_spec(), english_spec()] {
            for d in &spec.domains {
                assert!(!d.topic_groups.is_empty(), "{} has no topic groups", d.name);
                for &t in d.topic_groups {
                    assert!(
                        t < spec.n_topic_groups,
                        "{}: topic group {t} out of range",
                        d.name
                    );
                }
            }
        }
    }

    #[test]
    fn domain_index_is_case_insensitive() {
        let spec = weibo21_spec();
        assert_eq!(spec.domain_index("SOCIETY"), Some(8));
        assert_eq!(spec.domain_index("nonexistent"), None);
    }

    #[test]
    fn domains_share_topic_groups_for_cross_domain_overlap() {
        let spec = weibo21_spec();
        // Disaster and Society must overlap (the paper's motivating example of
        // related domains).
        let disaster = &spec.domains[3];
        let society = &spec.domains[8];
        let shares = disaster
            .topic_groups
            .iter()
            .any(|t| society.topic_groups.contains(t));
        assert!(shares);
    }
}
