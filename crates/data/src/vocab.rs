//! Vocabulary layout of the synthetic corpora.
//!
//! The vocabulary is partitioned into functional regions; the generator draws
//! from those regions and the models only ever see opaque token ids, exactly
//! as a tokenizer would produce. Knowing the layout lets tests reason about
//! what signal each token carries.

/// Token-id layout for a corpus.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    n_domains: usize,
    n_topic_groups: usize,
    shared_cues_per_class: usize,
    domain_cues_per_class: usize,
    topic_tokens_per_group: usize,
    noise_tokens: usize,
}

/// The categories a token id can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// The padding token (id 0).
    Pad,
    /// A corpus-wide cue indicating fake content.
    SharedFakeCue,
    /// A corpus-wide cue indicating real content.
    SharedRealCue,
    /// A fake cue in one domain's dialect.
    DomainFakeCue(usize),
    /// A real cue in one domain's dialect.
    DomainRealCue(usize),
    /// A topic token of one topic group.
    Topic(usize),
    /// An uninformative filler token.
    Noise,
}

impl Vocabulary {
    /// Standard layout used by both corpora.
    pub fn standard(n_domains: usize, n_topic_groups: usize) -> Self {
        Self {
            n_domains,
            n_topic_groups,
            shared_cues_per_class: 80,
            domain_cues_per_class: 20,
            topic_tokens_per_group: 40,
            noise_tokens: 200,
        }
    }

    /// Reassemble a vocabulary from explicitly recorded region sizes.
    ///
    /// This is the checkpoint-restore constructor: a serialized model must
    /// reproduce its token-id layout exactly even if the standard layout's
    /// constants change in a later version, so the codec stores all six
    /// fields and rebuilds through here.
    pub fn from_parts(
        n_domains: usize,
        n_topic_groups: usize,
        shared_cues_per_class: usize,
        domain_cues_per_class: usize,
        topic_tokens_per_group: usize,
        noise_tokens: usize,
    ) -> Self {
        Self {
            n_domains,
            n_topic_groups,
            shared_cues_per_class,
            domain_cues_per_class,
            topic_tokens_per_group,
            noise_tokens,
        }
    }

    /// The padding token id.
    pub const PAD: u32 = 0;

    /// Number of domains covered by the dialect regions.
    pub fn n_domains(&self) -> usize {
        self.n_domains
    }

    /// Number of topic groups.
    pub fn n_topic_groups(&self) -> usize {
        self.n_topic_groups
    }

    fn shared_fake_start(&self) -> u32 {
        1
    }

    fn shared_real_start(&self) -> u32 {
        self.shared_fake_start() + self.shared_cues_per_class as u32
    }

    fn domain_fake_start(&self, domain: usize) -> u32 {
        self.shared_real_start()
            + self.shared_cues_per_class as u32
            + (domain * 2 * self.domain_cues_per_class) as u32
    }

    fn domain_real_start(&self, domain: usize) -> u32 {
        self.domain_fake_start(domain) + self.domain_cues_per_class as u32
    }

    fn topic_start(&self, group: usize) -> u32 {
        self.domain_fake_start(self.n_domains) + (group * self.topic_tokens_per_group) as u32
    }

    fn noise_start(&self) -> u32 {
        self.topic_start(self.n_topic_groups)
    }

    /// Total vocabulary size (exclusive upper bound on token ids).
    pub fn size(&self) -> usize {
        self.noise_start() as usize + self.noise_tokens
    }

    /// A shared fake-cue token, indexed by `i` (wraps around).
    pub fn shared_fake_cue(&self, i: usize) -> u32 {
        self.shared_fake_start() + (i % self.shared_cues_per_class) as u32
    }

    /// A shared real-cue token.
    pub fn shared_real_cue(&self, i: usize) -> u32 {
        self.shared_real_start() + (i % self.shared_cues_per_class) as u32
    }

    /// A fake-cue token in `domain`'s dialect.
    pub fn domain_fake_cue(&self, domain: usize, i: usize) -> u32 {
        assert!(domain < self.n_domains);
        self.domain_fake_start(domain) + (i % self.domain_cues_per_class) as u32
    }

    /// A real-cue token in `domain`'s dialect.
    pub fn domain_real_cue(&self, domain: usize, i: usize) -> u32 {
        assert!(domain < self.n_domains);
        self.domain_real_start(domain) + (i % self.domain_cues_per_class) as u32
    }

    /// A topic token of the given topic group.
    pub fn topic_token(&self, group: usize, i: usize) -> u32 {
        assert!(group < self.n_topic_groups);
        self.topic_start(group) + (i % self.topic_tokens_per_group) as u32
    }

    /// A noise token.
    pub fn noise_token(&self, i: usize) -> u32 {
        self.noise_start() + (i % self.noise_tokens) as u32
    }

    /// Number of distinct cue tokens per class in the shared region.
    pub fn shared_cues_per_class(&self) -> usize {
        self.shared_cues_per_class
    }

    /// Number of distinct cue tokens per class in each domain dialect.
    pub fn domain_cues_per_class(&self) -> usize {
        self.domain_cues_per_class
    }

    /// Number of topic tokens per topic group.
    pub fn topic_tokens_per_group(&self) -> usize {
        self.topic_tokens_per_group
    }

    /// Number of noise tokens.
    pub fn noise_tokens(&self) -> usize {
        self.noise_tokens
    }

    /// Classify a token id back into its [`TokenKind`] (useful for tests and
    /// for the case-study rendering of Figure 3).
    pub fn kind(&self, token: u32) -> TokenKind {
        if token == Self::PAD {
            return TokenKind::Pad;
        }
        if token < self.shared_real_start() {
            return TokenKind::SharedFakeCue;
        }
        if token < self.domain_fake_start(0) {
            return TokenKind::SharedRealCue;
        }
        if token < self.topic_start(0) {
            let rel = (token - self.domain_fake_start(0)) as usize;
            let domain = rel / (2 * self.domain_cues_per_class);
            let within = rel % (2 * self.domain_cues_per_class);
            return if within < self.domain_cues_per_class {
                TokenKind::DomainFakeCue(domain)
            } else {
                TokenKind::DomainRealCue(domain)
            };
        }
        if token < self.noise_start() {
            let group = (token - self.topic_start(0)) as usize / self.topic_tokens_per_group;
            return TokenKind::Topic(group);
        }
        TokenKind::Noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let v = Vocabulary::standard(9, 9);
        // Walk every region accessor and check the round-trip classification.
        assert_eq!(v.kind(Vocabulary::PAD), TokenKind::Pad);
        assert_eq!(v.kind(v.shared_fake_cue(0)), TokenKind::SharedFakeCue);
        assert_eq!(v.kind(v.shared_fake_cue(79)), TokenKind::SharedFakeCue);
        assert_eq!(v.kind(v.shared_real_cue(0)), TokenKind::SharedRealCue);
        for d in 0..9 {
            assert_eq!(v.kind(v.domain_fake_cue(d, 3)), TokenKind::DomainFakeCue(d));
            assert_eq!(
                v.kind(v.domain_real_cue(d, 19)),
                TokenKind::DomainRealCue(d)
            );
        }
        for t in 0..9 {
            assert_eq!(v.kind(v.topic_token(t, 5)), TokenKind::Topic(t));
        }
        assert_eq!(v.kind(v.noise_token(0)), TokenKind::Noise);
        assert_eq!(v.kind(v.noise_token(199)), TokenKind::Noise);
    }

    #[test]
    fn all_tokens_are_below_vocab_size() {
        let v = Vocabulary::standard(9, 9);
        let max = [
            v.shared_fake_cue(1000),
            v.shared_real_cue(1000),
            v.domain_fake_cue(8, 1000),
            v.domain_real_cue(8, 1000),
            v.topic_token(8, 1000),
            v.noise_token(1000),
        ]
        .into_iter()
        .max()
        .unwrap();
        assert!((max as usize) < v.size());
    }

    #[test]
    fn vocab_size_is_reasonable() {
        let v9 = Vocabulary::standard(9, 9);
        let v3 = Vocabulary::standard(3, 3);
        assert!(v9.size() > v3.size());
        assert!(v9.size() < 2500, "vocab unexpectedly large: {}", v9.size());
    }

    #[test]
    fn indices_wrap_instead_of_escaping_region() {
        let v = Vocabulary::standard(3, 3);
        assert_eq!(
            v.shared_fake_cue(0),
            v.shared_fake_cue(v.shared_cues_per_class())
        );
        assert_eq!(
            v.topic_token(1, 0),
            v.topic_token(1, v.topic_tokens_per_group())
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_domain_panics() {
        let v = Vocabulary::standard(3, 3);
        let _ = v.domain_fake_cue(5, 0);
    }
}
