//! Dataset containers, splits and statistics.

use crate::domain::CorpusSpec;
use crate::generator::NewsItem;
use crate::vocab::Vocabulary;
use dtdbd_tensor::rng::Prng;

/// Per-domain item counts (used to reproduce Tables I, IV and V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainCount {
    /// Domain name.
    pub name: String,
    /// Number of fake items.
    pub fake: usize,
    /// Number of real items.
    pub real: usize,
}

impl DomainCount {
    /// Total number of items in the domain.
    pub fn total(&self) -> usize {
        self.fake + self.real
    }

    /// Percentage of items in the domain that are fake.
    pub fn fake_pct(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.fake as f64 / self.total() as f64
        }
    }
}

/// Aggregate statistics of a dataset.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Per-domain counts, in the corpus spec's domain order.
    pub per_domain: Vec<DomainCount>,
}

impl DatasetStats {
    /// Total number of items.
    pub fn total(&self) -> usize {
        self.per_domain.iter().map(DomainCount::total).sum()
    }

    /// Total number of fake items.
    pub fn total_fake(&self) -> usize {
        self.per_domain.iter().map(|d| d.fake).sum()
    }

    /// Percentage of the corpus belonging to each domain (`%News` in
    /// Table I).
    pub fn news_share_pct(&self) -> Vec<f64> {
        let total = self.total() as f64;
        self.per_domain
            .iter()
            .map(|d| 100.0 * d.total() as f64 / total)
            .collect()
    }

    /// Per-domain fake percentage (`%Fake` in Table I).
    pub fn fake_pct(&self) -> Vec<f64> {
        self.per_domain.iter().map(DomainCount::fake_pct).collect()
    }

    /// Unweighted mean of the per-domain fake percentages (the "Average"
    /// column of Table I).
    pub fn mean_fake_pct(&self) -> f64 {
        let v = self.fake_pct();
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// A multi-domain news dataset: items plus the metadata needed to interpret
/// them (corpus spec, vocabulary, sequence length).
#[derive(Debug, Clone)]
pub struct MultiDomainDataset {
    spec: CorpusSpec,
    vocab: Vocabulary,
    seq_len: usize,
    items: Vec<NewsItem>,
}

/// A train/validation/test split of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training portion.
    pub train: MultiDomainDataset,
    /// Validation portion (used by DTDBD's dynamic adjustment algorithm).
    pub val: MultiDomainDataset,
    /// Held-out test portion (all tables report on this).
    pub test: MultiDomainDataset,
}

impl MultiDomainDataset {
    /// Assemble a dataset from parts (normally called by the generator).
    pub fn new(spec: CorpusSpec, vocab: Vocabulary, seq_len: usize, items: Vec<NewsItem>) -> Self {
        Self {
            spec,
            vocab,
            seq_len,
            items,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the dataset holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow the items.
    pub fn items(&self) -> &[NewsItem] {
        &self.items
    }

    /// Corpus specification the dataset was generated from.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// Vocabulary layout.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Token sequence length of every item.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Number of domains.
    pub fn n_domains(&self) -> usize {
        self.spec.n_domains()
    }

    /// Domain names in order.
    pub fn domain_names(&self) -> Vec<&'static str> {
        self.spec.domain_names()
    }

    /// Compute per-domain counts.
    pub fn stats(&self) -> DatasetStats {
        let mut per_domain: Vec<DomainCount> = self
            .spec
            .domains
            .iter()
            .map(|d| DomainCount {
                name: d.name.to_string(),
                fake: 0,
                real: 0,
            })
            .collect();
        for item in &self.items {
            if item.is_fake() {
                per_domain[item.domain].fake += 1;
            } else {
                per_domain[item.domain].real += 1;
            }
        }
        DatasetStats { per_domain }
    }

    /// Stratified split by (domain, label): each stratum is shuffled and cut
    /// into `train_frac` / `val_frac` / remainder portions, so every split
    /// preserves the per-domain fake rates.
    ///
    /// # Panics
    /// Panics if the fractions are not in `(0, 1)` or sum to ≥ 1.
    pub fn split(&self, train_frac: f64, val_frac: f64, seed: u64) -> Split {
        assert!(train_frac > 0.0 && val_frac > 0.0 && train_frac + val_frac < 1.0);
        let mut rng = Prng::new(seed);
        let n_domains = self.n_domains();
        let mut strata: Vec<Vec<usize>> = vec![Vec::new(); n_domains * 2];
        for (idx, item) in self.items.iter().enumerate() {
            strata[item.domain * 2 + item.label].push(idx);
        }
        let mut train_idx = Vec::new();
        let mut val_idx = Vec::new();
        let mut test_idx = Vec::new();
        for stratum in &mut strata {
            rng.shuffle(stratum);
            let n = stratum.len();
            let n_train = ((n as f64) * train_frac).round() as usize;
            let n_val = ((n as f64) * val_frac).round() as usize;
            for (i, &idx) in stratum.iter().enumerate() {
                if i < n_train {
                    train_idx.push(idx);
                } else if i < n_train + n_val {
                    val_idx.push(idx);
                } else {
                    test_idx.push(idx);
                }
            }
        }
        let mut build = |indices: &mut Vec<usize>| {
            rng.shuffle(indices);
            let items: Vec<NewsItem> = indices.iter().map(|&i| self.items[i].clone()).collect();
            MultiDomainDataset::new(self.spec.clone(), self.vocab.clone(), self.seq_len, items)
        };
        Split {
            train: build(&mut train_idx),
            val: build(&mut val_idx),
            test: build(&mut test_idx),
        }
    }

    /// A deterministic random subsample containing roughly `fraction` of the
    /// items (stratified by domain and label, at least one item per
    /// non-empty stratum).
    pub fn subsample(&self, fraction: f64, seed: u64) -> MultiDomainDataset {
        assert!(fraction > 0.0 && fraction <= 1.0);
        if fraction >= 1.0 {
            return self.clone();
        }
        let mut rng = Prng::new(seed);
        let n_domains = self.n_domains();
        let mut strata: Vec<Vec<usize>> = vec![Vec::new(); n_domains * 2];
        for (idx, item) in self.items.iter().enumerate() {
            strata[item.domain * 2 + item.label].push(idx);
        }
        let mut keep = Vec::new();
        for stratum in &mut strata {
            if stratum.is_empty() {
                continue;
            }
            rng.shuffle(stratum);
            let n = ((stratum.len() as f64 * fraction).round() as usize).max(1);
            keep.extend_from_slice(&stratum[..n.min(stratum.len())]);
        }
        rng.shuffle(&mut keep);
        let items = keep.iter().map(|&i| self.items[i].clone()).collect();
        MultiDomainDataset::new(self.spec.clone(), self.vocab.clone(), self.seq_len, items)
    }

    /// Indices of the items belonging to a given domain.
    pub fn domain_indices(&self, domain: usize) -> Vec<usize> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.domain == domain)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::weibo21_spec;
    use crate::generator::{GeneratorConfig, NewsGenerator};

    fn dataset() -> MultiDomainDataset {
        NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny()).generate_scaled(1, 0.15)
    }

    #[test]
    fn stats_sum_to_dataset_size() {
        let ds = dataset();
        let stats = ds.stats();
        assert_eq!(stats.total(), ds.len());
        assert_eq!(stats.per_domain.len(), 9);
        let shares = stats.news_share_pct();
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn full_corpus_stats_match_table_i_percentages() {
        let ds = NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny()).generate(2);
        let stats = ds.stats();
        let fake_pct = stats.fake_pct();
        // Table I: Science 39.4, Disaster 76.1, Finance 27.4, Society 55.1.
        assert!((fake_pct[0] - 39.4).abs() < 0.5);
        assert!((fake_pct[3] - 76.1).abs() < 0.5);
        assert!((fake_pct[6] - 27.4).abs() < 0.5);
        assert!((fake_pct[8] - 55.1).abs() < 0.5);
        let shares = stats.news_share_pct();
        // Table I: Science 2.6%, Society 29.2% of the corpus.
        assert!((shares[0] - 2.6).abs() < 0.2);
        assert!((shares[8] - 29.2).abs() < 0.3);
        assert!((stats.mean_fake_pct() - 51.0).abs() < 1.5);
    }

    #[test]
    fn split_is_disjoint_and_covers_everything() {
        let ds = dataset();
        let split = ds.split(0.6, 0.2, 3);
        let total = split.train.len() + split.val.len() + split.test.len();
        assert_eq!(total, ds.len());
        // Id sets must be disjoint.
        let mut ids: Vec<usize> = split
            .train
            .items()
            .iter()
            .chain(split.val.items())
            .chain(split.test.items())
            .map(|i| i.id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ds.len());
    }

    #[test]
    fn split_preserves_per_domain_fake_rates() {
        let ds = dataset();
        let split = ds.split(0.6, 0.2, 4);
        let full = ds.stats();
        let train = split.train.stats();
        for (f, t) in full.per_domain.iter().zip(train.per_domain.iter()) {
            assert!(
                (f.fake_pct() - t.fake_pct()).abs() < 12.0,
                "{}: {} vs {}",
                f.name,
                f.fake_pct(),
                t.fake_pct()
            );
        }
    }

    #[test]
    fn split_is_deterministic() {
        let ds = dataset();
        let a = ds.split(0.6, 0.2, 9);
        let b = ds.split(0.6, 0.2, 9);
        let ids = |d: &MultiDomainDataset| d.items().iter().map(|i| i.id).collect::<Vec<_>>();
        assert_eq!(ids(&a.test), ids(&b.test));
    }

    #[test]
    fn subsample_preserves_structure() {
        let ds = dataset();
        let sub = ds.subsample(0.3, 5);
        assert!(sub.len() < ds.len());
        assert!(sub.len() > ds.len() / 5);
        assert_eq!(sub.n_domains(), ds.n_domains());
        // Every domain still present.
        let stats = sub.stats();
        for d in &stats.per_domain {
            assert!(d.total() > 0, "domain {} lost all items", d.name);
        }
    }

    #[test]
    fn domain_indices_select_the_right_items() {
        let ds = dataset();
        for (d, _) in ds.spec().domains.iter().enumerate() {
            for idx in ds.domain_indices(d) {
                assert_eq!(ds.items()[idx].domain, d);
            }
        }
    }
}
