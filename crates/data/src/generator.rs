//! Synthetic multi-domain news generation.
//!
//! Each generated item consists of a fixed-length token sequence plus style
//! and emotion side-features. The generative process is designed so that the
//! corpus exhibits exactly the structure the paper studies; see the crate
//! docs and DESIGN.md for the full rationale.

use crate::dataset::MultiDomainDataset;
use crate::domain::CorpusSpec;
use crate::vocab::Vocabulary;
use dtdbd_tensor::rng::Prng;

/// Dimensionality of the style side-feature vector.
pub const STYLE_DIM: usize = 8;
/// Dimensionality of the emotion side-feature vector.
pub const EMOTION_DIM: usize = 8;

/// A single synthetic news item.
#[derive(Debug, Clone)]
pub struct NewsItem {
    /// Token-id sequence of length [`GeneratorConfig::seq_len`].
    pub tokens: Vec<u32>,
    /// Veracity label: `0` = real, `1` = fake.
    pub label: usize,
    /// Hard domain label (index into the corpus spec's domains).
    pub domain: usize,
    /// Style side-features (sensationalism, punctuation density, hedging, ...).
    pub style: Vec<f32>,
    /// Emotion side-features (arousal, negativity, fear, joy, ...).
    pub emotion: Vec<f32>,
    /// Whether this item was generated as content-ambiguous (weak cues).
    pub ambiguous: bool,
    /// Stable per-corpus identifier (generation order before shuffling).
    pub id: usize,
}

impl NewsItem {
    /// `true` if the item is labelled fake.
    pub fn is_fake(&self) -> bool {
        self.label == 1
    }

    /// A short human-readable description used by the case-study figure.
    pub fn describe(&self, domain_name: &str) -> String {
        format!(
            "[{}] {} news #{} ({})",
            domain_name,
            if self.is_fake() { "fake" } else { "real" },
            self.id,
            if self.ambiguous {
                "ambiguous content"
            } else {
                "clear content"
            }
        )
    }
}

/// Tunable parameters of the generative process.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Token sequence length of every item.
    pub seq_len: usize,
    /// Number of slots reserved for veracity cue tokens.
    pub cue_slots: usize,
    /// Number of slots reserved for topic tokens.
    pub topic_slots: usize,
    /// Fraction of items whose cues are unreliable ("ambiguous" items); these
    /// are the items on which a biased model falls back to the domain prior.
    pub ambiguous_rate: f32,
    /// Cue reliability of ambiguous items (probability a cue slot carries a
    /// label-consistent cue).
    pub ambiguous_reliability: f32,
    /// Cue reliability range of clear items.
    pub clear_reliability: (f32, f32),
    /// Fraction of label-consistent cues drawn from the domain's dialect
    /// rather than the shared cue vocabulary.
    pub dialect_rate: f32,
    /// Scale of the noise added to style/emotion features.
    pub side_feature_noise: f32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seq_len: 24,
            cue_slots: 6,
            topic_slots: 10,
            ambiguous_rate: 0.35,
            ambiguous_reliability: 0.15,
            clear_reliability: (0.55, 0.85),
            dialect_rate: 0.40,
            side_feature_noise: 0.6,
        }
    }
}

impl GeneratorConfig {
    /// A reduced configuration for fast tests (shorter sequences).
    pub fn tiny() -> Self {
        Self {
            seq_len: 12,
            cue_slots: 4,
            topic_slots: 5,
            ..Self::default()
        }
    }
}

/// Deterministic generator of multi-domain corpora.
#[derive(Debug, Clone)]
pub struct NewsGenerator {
    config: GeneratorConfig,
    vocab: Vocabulary,
    spec: CorpusSpec,
}

impl NewsGenerator {
    /// Create a generator for a corpus specification.
    pub fn new(spec: CorpusSpec, config: GeneratorConfig) -> Self {
        let vocab = Vocabulary::standard(spec.n_domains(), spec.n_topic_groups);
        Self {
            config,
            vocab,
            spec,
        }
    }

    /// The vocabulary layout used by this generator.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The corpus specification.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generate the full corpus deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> MultiDomainDataset {
        let mut rng = Prng::new(seed);
        let mut items = Vec::with_capacity(self.spec.total());
        let mut id = 0usize;
        for (domain_idx, domain) in self.spec.domains.iter().enumerate() {
            for _ in 0..domain.fake {
                items.push(self.generate_item(domain_idx, 1, id, &mut rng));
                id += 1;
            }
            for _ in 0..domain.real {
                items.push(self.generate_item(domain_idx, 0, id, &mut rng));
                id += 1;
            }
        }
        rng.shuffle(&mut items);
        MultiDomainDataset::new(
            self.spec.clone(),
            self.vocab.clone(),
            self.config.seq_len,
            items,
        )
    }

    /// Generate a corpus whose per-domain counts are scaled by `fraction`
    /// (keeping at least 8 items per class per domain). Used by the `--quick`
    /// mode of the experiment binaries.
    pub fn generate_scaled(&self, seed: u64, fraction: f64) -> MultiDomainDataset {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let mut scaled = self.spec.clone();
        for d in &mut scaled.domains {
            d.fake = ((d.fake as f64 * fraction).round() as usize).max(8);
            d.real = ((d.real as f64 * fraction).round() as usize).max(8);
        }
        let scaled_gen = NewsGenerator::new(scaled, self.config.clone());
        scaled_gen.generate(seed)
    }

    fn generate_item(&self, domain: usize, label: usize, id: usize, rng: &mut Prng) -> NewsItem {
        let cfg = &self.config;
        let ambiguous = rng.chance(cfg.ambiguous_rate);
        let reliability = if ambiguous {
            cfg.ambiguous_reliability
        } else {
            rng.uniform(cfg.clear_reliability.0, cfg.clear_reliability.1)
        };

        let mut tokens = Vec::with_capacity(cfg.seq_len);
        // Cue slots: with probability `reliability` a label-consistent cue,
        // otherwise an uninformative token (noise or a random cue from either
        // class, which carries no net signal).
        for _ in 0..cfg.cue_slots {
            if rng.chance(reliability) {
                tokens.push(self.consistent_cue(domain, label, rng));
            } else if rng.chance(0.5) {
                tokens.push(self.vocab.noise_token(rng.below(self.vocab.noise_tokens())));
            } else {
                // A random cue of a random class: equally likely to mislead as
                // to help, so carries no usable evidence in expectation.
                let random_label = usize::from(rng.chance(0.5));
                tokens.push(self.consistent_cue(domain, random_label, rng));
            }
        }
        // Topic slots: draw topic groups from the domain's mixture with
        // geometrically decreasing weight, creating cross-domain overlap.
        let groups = self.spec.domains[domain].topic_groups;
        for _ in 0..cfg.topic_slots.min(cfg.seq_len - tokens.len()) {
            let g_idx = sample_geometric(rng, groups.len());
            let group = groups[g_idx];
            tokens.push(
                self.vocab
                    .topic_token(group, rng.below(self.vocab.topic_tokens_per_group())),
            );
        }
        // Remaining slots: noise.
        while tokens.len() < cfg.seq_len {
            tokens.push(self.vocab.noise_token(rng.below(self.vocab.noise_tokens())));
        }
        rng.shuffle(&mut tokens);

        let style = self.side_features(domain, label, reliability, StyleOrEmotion::Style, rng);
        let emotion = self.side_features(domain, label, reliability, StyleOrEmotion::Emotion, rng);

        NewsItem {
            tokens,
            label,
            domain,
            style,
            emotion,
            ambiguous,
            id,
        }
    }

    fn consistent_cue(&self, domain: usize, label: usize, rng: &mut Prng) -> u32 {
        let use_dialect = rng.chance(self.config.dialect_rate);
        match (label, use_dialect) {
            (1, false) => self
                .vocab
                .shared_fake_cue(rng.below(self.vocab.shared_cues_per_class())),
            (0, false) => self
                .vocab
                .shared_real_cue(rng.below(self.vocab.shared_cues_per_class())),
            (1, true) => self
                .vocab
                .domain_fake_cue(domain, rng.below(self.vocab.domain_cues_per_class())),
            (0, true) => self
                .vocab
                .domain_real_cue(domain, rng.below(self.vocab.domain_cues_per_class())),
            _ => unreachable!("label is binary"),
        }
    }

    fn side_features(
        &self,
        domain: usize,
        label: usize,
        reliability: f32,
        which: StyleOrEmotion,
        rng: &mut Prng,
    ) -> Vec<f32> {
        let dim = match which {
            StyleOrEmotion::Style => STYLE_DIM,
            StyleOrEmotion::Emotion => EMOTION_DIM,
        };
        // The label signal lives in the first half of the vector and scales
        // with content reliability; the second half carries a domain-specific
        // offset; everything is perturbed by noise.
        let sign = if label == 1 { 1.0 } else { -1.0 };
        let phase = match which {
            StyleOrEmotion::Style => 0.0,
            StyleOrEmotion::Emotion => 1.0,
        };
        (0..dim)
            .map(|k| {
                let label_part = if k < dim / 2 {
                    sign * reliability * (1.0 + 0.3 * ((k as f32 + phase) * 1.3).sin())
                } else {
                    0.0
                };
                let domain_part = if k >= dim / 2 {
                    0.5 * ((domain as f32 + 1.0) * (k as f32 + 1.0 + phase) * 0.7).sin()
                } else {
                    0.0
                };
                label_part + domain_part + self.config.side_feature_noise * rng.normal()
            })
            .collect()
    }
}

#[derive(Clone, Copy)]
enum StyleOrEmotion {
    Style,
    Emotion,
}

/// Sample an index in `[0, n)` with geometrically decreasing probability
/// (ratio 1/2), so the first topic group dominates but later ones appear.
fn sample_geometric(rng: &mut Prng, n: usize) -> usize {
    debug_assert!(n > 0);
    let weights: Vec<f32> = (0..n).map(|i| 0.5f32.powi(i as i32)).collect();
    rng.weighted(&weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{english_spec, weibo21_spec};
    use crate::vocab::TokenKind;

    fn small_weibo() -> MultiDomainDataset {
        let generator = NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny());
        generator.generate_scaled(7, 0.1)
    }

    #[test]
    fn full_generation_matches_spec_counts() {
        let generator = NewsGenerator::new(english_spec(), GeneratorConfig::tiny());
        let ds = generator.generate(42);
        assert_eq!(ds.len(), 28_764);
        let stats = ds.stats();
        assert_eq!(stats.per_domain[0].fake, 5067);
        assert_eq!(stats.per_domain[1].total(), 826);
        assert_eq!(stats.per_domain[2].real, 4750);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let generator = NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny());
        let a = generator.generate_scaled(3, 0.05);
        let b = generator.generate_scaled(3, 0.05);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.items().iter().zip(b.items().iter()) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.label, y.label);
            assert_eq!(x.domain, y.domain);
        }
        let c = generator.generate_scaled(4, 0.05);
        assert!(a
            .items()
            .iter()
            .zip(c.items().iter())
            .any(|(x, y)| x.tokens != y.tokens));
    }

    #[test]
    fn items_have_expected_shape_and_ranges() {
        let ds = small_weibo();
        let cfg = GeneratorConfig::tiny();
        let vocab_size = ds.vocabulary().size() as u32;
        for item in ds.items() {
            assert_eq!(item.tokens.len(), cfg.seq_len);
            assert!(item.tokens.iter().all(|&t| t < vocab_size));
            assert!(item.label <= 1);
            assert!(item.domain < 9);
            assert_eq!(item.style.len(), STYLE_DIM);
            assert_eq!(item.emotion.len(), EMOTION_DIM);
        }
    }

    #[test]
    fn fake_items_carry_more_fake_cues_than_real_items() {
        let ds = small_weibo();
        let vocab = ds.vocabulary();
        let mut fake_cue_counts = (0usize, 0usize); // (in fake items, in real items)
        let mut item_counts = (0usize, 0usize);
        for item in ds.items() {
            let n_fake_cues = item
                .tokens
                .iter()
                .filter(|&&t| {
                    matches!(
                        vocab.kind(t),
                        TokenKind::SharedFakeCue | TokenKind::DomainFakeCue(_)
                    )
                })
                .count();
            if item.is_fake() {
                fake_cue_counts.0 += n_fake_cues;
                item_counts.0 += 1;
            } else {
                fake_cue_counts.1 += n_fake_cues;
                item_counts.1 += 1;
            }
        }
        let avg_fake = fake_cue_counts.0 as f32 / item_counts.0 as f32;
        let avg_real = fake_cue_counts.1 as f32 / item_counts.1 as f32;
        assert!(
            avg_fake > avg_real + 0.5,
            "fake items should carry more fake cues: {avg_fake} vs {avg_real}"
        );
    }

    #[test]
    fn ambiguous_rate_is_close_to_configured_value() {
        let ds = small_weibo();
        let rate = ds.items().iter().filter(|i| i.ambiguous).count() as f32 / ds.len() as f32;
        assert!((rate - 0.35).abs() < 0.08, "ambiguous rate {rate}");
    }

    #[test]
    fn topic_tokens_mostly_come_from_home_group() {
        let generator = NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny());
        let ds = generator.generate_scaled(11, 0.1);
        let vocab = ds.vocabulary();
        // For the Science domain (home group 0) topic tokens of group 0 should
        // dominate but not be exclusive.
        let mut home = 0usize;
        let mut other = 0usize;
        for item in ds.items().iter().filter(|i| i.domain == 0) {
            for &t in &item.tokens {
                if let TokenKind::Topic(gr) = vocab.kind(t) {
                    if gr == 0 {
                        home += 1;
                    } else {
                        other += 1;
                    }
                }
            }
        }
        assert!(home > other, "home {home} other {other}");
        assert!(other > 0, "expected cross-domain topic overlap");
    }

    #[test]
    fn emotion_signal_separates_labels_on_clear_items() {
        let ds = small_weibo();
        let mean_first = |fake: bool| {
            let sel: Vec<&NewsItem> = ds
                .items()
                .iter()
                .filter(|i| i.is_fake() == fake && !i.ambiguous)
                .collect();
            sel.iter().map(|i| i.emotion[0]).sum::<f32>() / sel.len() as f32
        };
        assert!(mean_first(true) > mean_first(false) + 0.3);
    }

    #[test]
    fn scaled_generation_respects_minimum_counts() {
        let generator = NewsGenerator::new(weibo21_spec(), GeneratorConfig::tiny());
        let ds = generator.generate_scaled(5, 0.001);
        let stats = ds.stats();
        for d in &stats.per_domain {
            assert!(d.fake >= 8 && d.real >= 8);
        }
    }

    #[test]
    fn describe_mentions_domain_and_label() {
        let ds = small_weibo();
        let item = &ds.items()[0];
        let name = ds.spec().domains[item.domain].name;
        let s = item.describe(name);
        assert!(s.contains(name));
        assert!(s.contains("news"));
    }
}
