//! # dtdbd-viz
//!
//! Visualization substrate for the DTDBD reproduction: PCA, an exact
//! (O(n²)) t-SNE implementation, and an ASCII scatter renderer. Together they
//! regenerate Figure 2 of the paper — the t-SNE projection of the
//! intermediate features of M3FEND, the plain student, the DAT-IE student and
//! the DTDBD student, coloured by domain.

pub mod pca;
pub mod scatter;
pub mod tsne;

pub use pca::pca_project;
pub use scatter::{render_scatter, ScatterConfig};
pub use tsne::{Tsne, TsneConfig};
