//! ASCII scatter rendering of 2-D embeddings.
//!
//! The experiment binaries have no plotting backend, so Figure 2 is rendered
//! as a character grid: each cell shows the symbol of the (most common)
//! domain among the points that fall into it. Regions dominated by a single
//! domain are exactly the "areas containing samples from only one or a few
//! domains" the paper's qualitative analysis talks about.

use dtdbd_tensor::Tensor;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct ScatterConfig {
    /// Grid width in characters.
    pub width: usize,
    /// Grid height in characters.
    pub height: usize,
    /// One symbol per class/domain (cycled if there are more classes).
    pub symbols: Vec<char>,
}

impl Default for ScatterConfig {
    fn default() -> Self {
        Self {
            width: 72,
            height: 28,
            symbols: vec!['S', 'M', 'E', 'D', 'P', 'H', 'F', 'N', 'O'],
        }
    }
}

/// Render a `[n, 2]` embedding with integer class labels as an ASCII grid.
///
/// # Panics
/// Panics if the embedding is not `[n, 2]` or lengths mismatch.
pub fn render_scatter(embedding: &Tensor, classes: &[usize], config: &ScatterConfig) -> String {
    assert_eq!(embedding.ndim(), 2, "expected [n, 2]");
    assert_eq!(embedding.shape()[1], 2, "expected 2-D points");
    assert_eq!(embedding.shape()[0], classes.len(), "label count mismatch");
    let n = classes.len();
    if n == 0 {
        return String::new();
    }
    let (mut min_x, mut max_x) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f32::INFINITY, f32::NEG_INFINITY);
    for i in 0..n {
        min_x = min_x.min(embedding.at2(i, 0));
        max_x = max_x.max(embedding.at2(i, 0));
        min_y = min_y.min(embedding.at2(i, 1));
        max_y = max_y.max(embedding.at2(i, 1));
    }
    let span_x = (max_x - min_x).max(1e-6);
    let span_y = (max_y - min_y).max(1e-6);

    let n_classes = classes.iter().copied().max().unwrap_or(0) + 1;
    // counts[cell][class]
    let mut counts = vec![vec![0usize; n_classes]; config.width * config.height];
    for i in 0..n {
        let cx =
            (((embedding.at2(i, 0) - min_x) / span_x) * (config.width - 1) as f32).round() as usize;
        let cy = (((embedding.at2(i, 1) - min_y) / span_y) * (config.height - 1) as f32).round()
            as usize;
        counts[cy * config.width + cx][classes[i]] += 1;
    }

    let mut out = String::with_capacity((config.width + 1) * config.height);
    for row in (0..config.height).rev() {
        for col in 0..config.width {
            let cell = &counts[row * config.width + col];
            let total: usize = cell.iter().sum();
            if total == 0 {
                out.push(' ');
            } else {
                let best = cell
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(cls, _)| cls)
                    .unwrap_or(0);
                out.push(config.symbols[best % config.symbols.len()]);
            }
        }
        out.push('\n');
    }
    out
}

/// Fraction of occupied grid cells whose points all come from a single
/// class — a simple quantitative proxy for the "domain separation" the paper
/// reads off Figure 2 (higher = more domain-pure regions).
pub fn single_class_cell_fraction(
    embedding: &Tensor,
    classes: &[usize],
    config: &ScatterConfig,
) -> f64 {
    assert_eq!(embedding.shape()[0], classes.len());
    let n = classes.len();
    if n == 0 {
        return 0.0;
    }
    let (mut min_x, mut max_x) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f32::INFINITY, f32::NEG_INFINITY);
    for i in 0..n {
        min_x = min_x.min(embedding.at2(i, 0));
        max_x = max_x.max(embedding.at2(i, 0));
        min_y = min_y.min(embedding.at2(i, 1));
        max_y = max_y.max(embedding.at2(i, 1));
    }
    let span_x = (max_x - min_x).max(1e-6);
    let span_y = (max_y - min_y).max(1e-6);
    let n_classes = classes.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![vec![0usize; n_classes]; config.width * config.height];
    for i in 0..n {
        let cx =
            (((embedding.at2(i, 0) - min_x) / span_x) * (config.width - 1) as f32).round() as usize;
        let cy = (((embedding.at2(i, 1) - min_y) / span_y) * (config.height - 1) as f32).round()
            as usize;
        counts[cy * config.width + cx][classes[i]] += 1;
    }
    let mut occupied = 0usize;
    let mut pure = 0usize;
    for cell in counts {
        let total: usize = cell.iter().sum();
        if total == 0 {
            continue;
        }
        occupied += 1;
        if cell.iter().filter(|&&c| c > 0).count() == 1 {
            pure += 1;
        }
    }
    if occupied == 0 {
        0.0
    } else {
        pure as f64 / occupied as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_tensor::rng::Prng;

    fn two_blobs() -> (Tensor, Vec<usize>) {
        let mut rng = Prng::new(1);
        let mut rows = Vec::new();
        let mut classes = Vec::new();
        for i in 0..40 {
            let (cx, cls) = if i % 2 == 0 { (-5.0, 0) } else { (5.0, 1) };
            rows.push(Tensor::from_vec(vec![
                cx + 0.2 * rng.normal(),
                0.2 * rng.normal(),
            ]));
            classes.push(cls);
        }
        (Tensor::stack_rows(&rows), classes)
    }

    #[test]
    fn render_contains_both_symbols_and_has_grid_shape() {
        let (emb, classes) = two_blobs();
        let cfg = ScatterConfig {
            width: 40,
            height: 10,
            ..ScatterConfig::default()
        };
        let s = render_scatter(&emb, &classes, &cfg);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 40));
        assert!(s.contains('S'));
        assert!(s.contains('M'));
    }

    #[test]
    fn well_separated_blobs_have_high_purity() {
        let (emb, classes) = two_blobs();
        let purity = single_class_cell_fraction(&emb, &classes, &ScatterConfig::default());
        assert!(purity > 0.95, "purity {purity}");
    }

    #[test]
    fn fully_mixed_points_have_lower_purity_than_separated_ones() {
        let mut rng = Prng::new(2);
        let mut rows = Vec::new();
        let mut classes = Vec::new();
        for i in 0..200 {
            rows.push(Tensor::from_vec(vec![rng.normal(), rng.normal()]));
            classes.push(i % 2);
        }
        let mixed = Tensor::stack_rows(&rows);
        let cfg = ScatterConfig {
            width: 12,
            height: 6,
            ..ScatterConfig::default()
        };
        let mixed_purity = single_class_cell_fraction(&mixed, &classes, &cfg);
        let (sep, sep_classes) = two_blobs();
        let sep_purity = single_class_cell_fraction(&sep, &sep_classes, &cfg);
        assert!(sep_purity > mixed_purity);
    }

    #[test]
    fn empty_input_renders_empty_string() {
        let emb = Tensor::zeros(&[0, 2]);
        let s = render_scatter(&emb, &[], &ScatterConfig::default());
        assert!(s.is_empty());
    }
}
