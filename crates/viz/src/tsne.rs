//! Exact t-SNE (van der Maaten & Hinton, 2008).
//!
//! An O(n²) implementation with perplexity calibration, early exaggeration
//! and momentum gradient descent — sufficient for the ~1,000-point feature
//! sets visualised in Figure 2.

use crate::pca::pca_project;
use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::Tensor;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f32,
    /// Number of gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Iterations during which the attractive forces are exaggerated.
    pub early_exaggeration_iters: usize,
    /// Early exaggeration factor.
    pub exaggeration: f32,
    /// Momentum of the gradient descent.
    pub momentum: f32,
    /// Random seed (initialisation uses PCA plus a small jitter).
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 300,
            learning_rate: 100.0,
            early_exaggeration_iters: 80,
            exaggeration: 4.0,
            momentum: 0.8,
            seed: 42,
        }
    }
}

impl TsneConfig {
    /// A faster configuration for tests and quick runs.
    pub fn quick() -> Self {
        Self {
            perplexity: 10.0,
            iterations: 120,
            early_exaggeration_iters: 30,
            ..Self::default()
        }
    }
}

/// Exact t-SNE runner.
#[derive(Debug, Clone)]
pub struct Tsne {
    config: TsneConfig,
}

impl Tsne {
    /// Create a runner.
    pub fn new(config: TsneConfig) -> Self {
        Self { config }
    }

    /// Embed `[n, d]` data into 2-D, returning an `[n, 2]` tensor.
    pub fn embed(&self, data: &Tensor) -> Tensor {
        assert_eq!(data.ndim(), 2, "t-SNE expects [n, d]");
        let n = data.shape()[0];
        assert!(n >= 5, "t-SNE needs at least a handful of points");
        let cfg = &self.config;

        // High-dimensional affinities.
        let p = joint_probabilities(data, cfg.perplexity);

        // Initialise from PCA with a small jitter to break ties.
        let mut rng = Prng::new(cfg.seed);
        let init = pca_project(data, 2.min(data.shape()[1]), cfg.seed);
        let mut y = vec![0.0f32; n * 2];
        for i in 0..n {
            for c in 0..2 {
                let base = if init.shape()[1] > c {
                    init.at2(i, c)
                } else {
                    0.0
                };
                y[i * 2 + c] = 0.01 * base + 0.01 * rng.normal();
            }
        }
        let mut velocity = vec![0.0f32; n * 2];

        for iter in 0..cfg.iterations {
            let exaggeration = if iter < cfg.early_exaggeration_iters {
                cfg.exaggeration
            } else {
                1.0
            };
            let grad = gradient(&p, &y, n, exaggeration);
            for i in 0..n * 2 {
                velocity[i] = cfg.momentum * velocity[i] - cfg.learning_rate * grad[i];
                y[i] += velocity[i];
            }
            center(&mut y, n);
        }
        Tensor::new(vec![n, 2], y)
    }

    /// KL divergence between the input affinities and the embedding's
    /// affinities — the quantity t-SNE minimises. Exposed for tests and
    /// benchmarks.
    pub fn kl_divergence(&self, data: &Tensor, embedding: &Tensor) -> f32 {
        let n = data.shape()[0];
        let p = joint_probabilities(data, self.config.perplexity);
        let q = low_dim_affinities(embedding.data(), n);
        let mut kl = 0.0f32;
        for i in 0..n * n {
            if p[i] > 1e-12 {
                kl += p[i] * (p[i] / q[i].max(1e-12)).ln();
            }
        }
        kl
    }
}

/// Symmetrised, perplexity-calibrated joint probabilities `P`.
fn joint_probabilities(data: &Tensor, perplexity: f32) -> Vec<f32> {
    let n = data.shape()[0];
    let d = data.shape()[1];
    // Pairwise squared distances.
    let mut dist = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut acc = 0.0f32;
            for t in 0..d {
                let diff = data.at2(i, t) - data.at2(j, t);
                acc += diff * diff;
            }
            dist[i * n + j] = acc;
            dist[j * n + i] = acc;
        }
    }
    // Per-point binary search for the bandwidth matching the perplexity.
    let target_entropy = perplexity.max(2.0).ln();
    let mut p_cond = vec![0.0f32; n * n];
    for i in 0..n {
        let mut beta = 1.0f32;
        let mut beta_min = f32::NEG_INFINITY;
        let mut beta_max = f32::INFINITY;
        for _ in 0..50 {
            let (entropy, row) = row_distribution(&dist[i * n..(i + 1) * n], i, beta);
            let diff = entropy - target_entropy;
            p_cond[i * n..(i + 1) * n].copy_from_slice(&row);
            if diff.abs() < 1e-4 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = if beta_min.is_finite() {
                    (beta + beta_min) / 2.0
                } else {
                    beta / 2.0
                };
            }
        }
    }
    // Symmetrise and normalise.
    let mut p = vec![0.0f32; n * n];
    let mut total = 0.0f32;
    for i in 0..n {
        for j in 0..n {
            let v = (p_cond[i * n + j] + p_cond[j * n + i]) / (2.0 * n as f32);
            p[i * n + j] = v;
            total += v;
        }
    }
    for v in &mut p {
        *v = (*v / total.max(1e-12)).max(1e-12);
    }
    p
}

fn row_distribution(dist_row: &[f32], i: usize, beta: f32) -> (f32, Vec<f32>) {
    let n = dist_row.len();
    let mut row = vec![0.0f32; n];
    let mut sum = 0.0f32;
    for (j, &dsq) in dist_row.iter().enumerate() {
        if j == i {
            continue;
        }
        let v = (-beta * dsq).exp();
        row[j] = v;
        sum += v;
    }
    let sum = sum.max(1e-12);
    let mut entropy = 0.0f32;
    for (j, r) in row.iter_mut().enumerate() {
        if j == i {
            continue;
        }
        *r /= sum;
        if *r > 1e-12 {
            entropy -= *r * r.ln();
        }
    }
    (entropy, row)
}

fn low_dim_affinities(y: &[f32], n: usize) -> Vec<f32> {
    let mut q = vec![0.0f32; n * n];
    let mut total = 0.0f32;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = y[i * 2] - y[j * 2];
            let dy = y[i * 2 + 1] - y[j * 2 + 1];
            let v = 1.0 / (1.0 + dx * dx + dy * dy);
            q[i * n + j] = v;
            q[j * n + i] = v;
            total += 2.0 * v;
        }
    }
    for v in &mut q {
        *v /= total.max(1e-12);
    }
    q
}

fn gradient(p: &[f32], y: &[f32], n: usize, exaggeration: f32) -> Vec<f32> {
    // Unnormalised Student-t kernel and its normaliser.
    let mut num = vec![0.0f32; n * n];
    let mut total = 0.0f32;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = y[i * 2] - y[j * 2];
            let dy = y[i * 2 + 1] - y[j * 2 + 1];
            let v = 1.0 / (1.0 + dx * dx + dy * dy);
            num[i * n + j] = v;
            num[j * n + i] = v;
            total += 2.0 * v;
        }
    }
    let total = total.max(1e-12);
    let mut grad = vec![0.0f32; n * 2];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let q = (num[i * n + j] / total).max(1e-12);
            let mult = (exaggeration * p[i * n + j] - q) * num[i * n + j];
            grad[i * 2] += 4.0 * mult * (y[i * 2] - y[j * 2]);
            grad[i * 2 + 1] += 4.0 * mult * (y[i * 2 + 1] - y[j * 2 + 1]);
        }
    }
    grad
}

fn center(y: &mut [f32], n: usize) {
    let mut mean = [0.0f32; 2];
    for i in 0..n {
        mean[0] += y[i * 2];
        mean[1] += y[i * 2 + 1];
    }
    mean[0] /= n as f32;
    mean[1] /= n as f32;
    for i in 0..n {
        y[i * 2] -= mean[0];
        y[i * 2 + 1] -= mean[1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian clusters must stay separated in 2-D.
    fn clustered_data(per_cluster: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = Prng::new(seed);
        let centers = [
            vec![8.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 8.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 8.0, 0.0, 0.0],
        ];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..per_cluster {
                let row: Vec<f32> = center.iter().map(|&v| v + 0.3 * rng.normal()).collect();
                rows.push(Tensor::from_vec(row));
                labels.push(c);
            }
        }
        (Tensor::stack_rows(&rows), labels)
    }

    fn centroid(points: &Tensor, labels: &[usize], cluster: usize) -> (f32, f32) {
        let idx: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == cluster)
            .map(|(i, _)| i)
            .collect();
        let n = idx.len() as f32;
        let x = idx.iter().map(|&i| points.at2(i, 0)).sum::<f32>() / n;
        let y = idx.iter().map(|&i| points.at2(i, 1)).sum::<f32>() / n;
        (x, y)
    }

    #[test]
    fn clusters_remain_separated_in_the_embedding() {
        let (data, labels) = clustered_data(25, 3);
        let tsne = Tsne::new(TsneConfig::quick());
        let emb = tsne.embed(&data);
        assert_eq!(emb.shape(), &[75, 2]);
        assert!(!emb.has_non_finite());

        // Average distance to own centroid must be well below the distance
        // between different centroids.
        let centroids: Vec<(f32, f32)> = (0..3).map(|c| centroid(&emb, &labels, c)).collect();
        let mut within = 0.0f32;
        for (i, &l) in labels.iter().enumerate() {
            let (cx, cy) = centroids[l];
            within += ((emb.at2(i, 0) - cx).powi(2) + (emb.at2(i, 1) - cy).powi(2)).sqrt();
        }
        within /= labels.len() as f32;
        let mut between = f32::INFINITY;
        for a in 0..3 {
            for b in (a + 1)..3 {
                let d = ((centroids[a].0 - centroids[b].0).powi(2)
                    + (centroids[a].1 - centroids[b].1).powi(2))
                .sqrt();
                between = between.min(d);
            }
        }
        assert!(
            between > 2.0 * within,
            "between {between} should exceed 2x within {within}"
        );
    }

    #[test]
    fn joint_probabilities_are_a_distribution() {
        let (data, _) = clustered_data(10, 5);
        let p = joint_probabilities(&data, 10.0);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn embedding_is_deterministic_for_a_seed() {
        let (data, _) = clustered_data(8, 7);
        let tsne = Tsne::new(TsneConfig {
            iterations: 50,
            ..TsneConfig::quick()
        });
        let a = tsne.embed(&data);
        let b = tsne.embed(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn kl_divergence_improves_over_random_layout() {
        let (data, _) = clustered_data(15, 9);
        let tsne = Tsne::new(TsneConfig::quick());
        let emb = tsne.embed(&data);
        let mut rng = Prng::new(1);
        let random = Tensor::randn(&[data.shape()[0], 2], 1.0, &mut rng);
        assert!(tsne.kl_divergence(&data, &emb) < tsne.kl_divergence(&data, &random));
    }
}
