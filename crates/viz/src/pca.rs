//! Principal component analysis via power iteration.
//!
//! Used both on its own and as the standard initialisation / pre-reduction
//! step of t-SNE.

use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::Tensor;

/// Project `[n, d]` data onto its first `k` principal components,
/// returning an `[n, k]` matrix.
///
/// Components are extracted one at a time by power iteration with deflation,
/// which is accurate enough for visualisation purposes and keeps the code
/// dependency-free.
pub fn pca_project(data: &Tensor, k: usize, seed: u64) -> Tensor {
    assert_eq!(data.ndim(), 2, "pca expects [n, d]");
    let (n, d) = (data.shape()[0], data.shape()[1]);
    assert!(k <= d, "cannot extract more components than dimensions");
    let mut rng = Prng::new(seed);

    // Center the data.
    let mut mean = vec![0.0f32; d];
    for i in 0..n {
        for (m, v) in mean.iter_mut().zip(data.row(i).iter()) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f32;
    }
    let mut centered = vec![0.0f32; n * d];
    for i in 0..n {
        for j in 0..d {
            centered[i * d + j] = data.at2(i, j) - mean[j];
        }
    }

    // Covariance matrix (d x d).
    let mut cov = vec![0.0f32; d * d];
    for i in 0..n {
        let row = &centered[i * d..(i + 1) * d];
        for a in 0..d {
            if row[a] == 0.0 {
                continue;
            }
            for b in 0..d {
                cov[a * d + b] += row[a] * row[b];
            }
        }
    }
    let denom = (n.max(2) - 1) as f32;
    for c in &mut cov {
        *c /= denom;
    }

    // Power iteration with deflation.
    let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut v: Vec<f32> = (0..d).map(|_| rng.normal()).collect();
        normalize(&mut v);
        for _ in 0..60 {
            let mut next = vec![0.0f32; d];
            for a in 0..d {
                let mut acc = 0.0f32;
                for b in 0..d {
                    acc += cov[a * d + b] * v[b];
                }
                next[a] = acc;
            }
            normalize(&mut next);
            v = next;
        }
        // Deflate: cov -= lambda v v^T.
        let lambda = rayleigh(&cov, &v, d);
        for a in 0..d {
            for b in 0..d {
                cov[a * d + b] -= lambda * v[a] * v[b];
            }
        }
        components.push(v);
    }

    // Project.
    let mut out = vec![0.0f32; n * k];
    for i in 0..n {
        let row = &centered[i * d..(i + 1) * d];
        for (c, comp) in components.iter().enumerate() {
            out[i * k + c] = row.iter().zip(comp.iter()).map(|(x, w)| x * w).sum();
        }
    }
    Tensor::new(vec![n, k], out)
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
    for x in v {
        *x /= norm;
    }
}

fn rayleigh(cov: &[f32], v: &[f32], d: usize) -> f32 {
    let mut av = vec![0.0f32; d];
    for a in 0..d {
        for b in 0..d {
            av[a] += cov[a * d + b] * v[b];
        }
    }
    av.iter().zip(v.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data stretched along one axis: the first PC must capture it.
    #[test]
    fn first_component_captures_dominant_direction() {
        let mut rng = Prng::new(1);
        let mut rows = Vec::new();
        for _ in 0..200 {
            let main = rng.normal() * 10.0;
            let minor = rng.normal() * 0.5;
            // The dominant direction is (1, 1)/sqrt(2) in a 2-D space
            // embedded in 4 dimensions.
            rows.push(Tensor::from_vec(vec![
                main + minor,
                main - minor,
                rng.normal() * 0.1,
                0.0,
            ]));
        }
        let data = Tensor::stack_rows(&rows);
        let proj = pca_project(&data, 1, 7);
        assert_eq!(proj.shape(), &[200, 1]);
        // The projection variance along PC1 should be close to the original
        // dominant variance (~2 * 100).
        let var: f32 = proj.data().iter().map(|x| x * x).sum::<f32>() / 200.0;
        assert!(var > 100.0, "projected variance {var}");
    }

    #[test]
    fn projection_is_centered() {
        let mut rng = Prng::new(2);
        let data = Tensor::randn(&[100, 6], 1.0, &mut rng).map(|x| x + 5.0);
        let proj = pca_project(&data, 2, 3);
        let mean0: f32 = (0..100).map(|i| proj.at2(i, 0)).sum::<f32>() / 100.0;
        assert!(mean0.abs() < 0.5, "mean {mean0}");
    }

    #[test]
    fn components_are_roughly_orthogonal_in_projection() {
        let mut rng = Prng::new(3);
        let data = Tensor::randn(&[150, 8], 1.0, &mut rng);
        let proj = pca_project(&data, 2, 5);
        let dot: f32 = (0..150)
            .map(|i| proj.at2(i, 0) * proj.at2(i, 1))
            .sum::<f32>()
            / 150.0;
        let v0: f32 = (0..150).map(|i| proj.at2(i, 0).powi(2)).sum::<f32>() / 150.0;
        let v1: f32 = (0..150).map(|i| proj.at2(i, 1).powi(2)).sum::<f32>() / 150.0;
        assert!(
            dot.abs() < 0.2 * (v0 * v1).sqrt(),
            "dot {dot} v0 {v0} v1 {v1}"
        );
    }

    #[test]
    #[should_panic(expected = "more components")]
    fn too_many_components_panics() {
        let data = Tensor::zeros(&[3, 2]);
        let _ = pca_project(&data, 5, 0);
    }
}
