//! Dense layers: [`Linear`] and the [`Mlp`] stack used for every classifier
//! head in the paper's models.

use dtdbd_tensor::init;
use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::{Graph, ParamId, ParamStore, Var};

/// A fully connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a new linear layer's parameters under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Prng,
    ) -> Self {
        let weight = store.add(
            format!("{name}.weight"),
            init::xavier_uniform(in_dim, out_dim, &[in_dim, out_dim], rng),
        );
        store.get_mut(weight).quantizable = true;
        let bias = store.add(format!("{name}.bias"), init::zeros(&[out_dim]));
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter handles `(weight, bias)`.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.weight, self.bias)
    }

    /// Apply the layer to a `[batch, in_dim]` input. Dispatches through
    /// [`Graph::linear_param`], so graphs with an int8 registry run the
    /// fused quantized kernel and every other graph composes the exact
    /// `param → matmul → add_bias` sequence as before.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        g.linear_param(x, self.weight, self.bias)
    }
}

/// Which nonlinearity an [`Mlp`] uses between its hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

/// A multi-layer perceptron: `Linear -> activation -> dropout` repeated, with
/// a final linear output layer and no output activation.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    dropout: f32,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[320, 64, 2]` builds
    /// one hidden layer of width 64 and a 2-way output.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        sizes: &[usize],
        activation: Activation,
        dropout: f32,
        rng: &mut Prng,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "Mlp needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.fc{i}"), w[0], w[1], rng))
            .collect();
        Self {
            layers,
            activation,
            dropout,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Apply the MLP to a `[batch, in_dim]` input.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, h);
            if i < last {
                h = match self.activation {
                    Activation::Relu => g.relu(h),
                    Activation::Tanh => g.tanh(h),
                };
                h = g.dropout(h, self.dropout);
            }
        }
        h
    }

    /// Apply every layer except the final linear output, returning the last
    /// hidden representation (used as the "intermediate feature" that the
    /// paper distils).
    pub fn forward_hidden(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for layer in &self.layers[..last] {
            h = layer.forward(g, h);
            h = match self.activation {
                Activation::Relu => g.relu(h),
                Activation::Tanh => g.tanh(h),
            };
            h = g.dropout(h, self.dropout);
        }
        h
    }

    /// Apply only the final linear layer to an already-computed hidden
    /// representation (the counterpart of [`Mlp::forward_hidden`]).
    pub fn forward_output(&self, g: &mut Graph<'_>, hidden: Var) -> Var {
        self.layers.last().expect("non-empty").forward(g, hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_tensor::gradcheck::check_gradients;
    use dtdbd_tensor::Tensor;

    #[test]
    fn linear_output_shape_and_bias() {
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 4, 3, &mut rng);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::zeros(&[2, 4]));
        let y = layer.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 3]);
        // Zero input -> output equals bias (zero-initialised).
        assert!(g.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mlp_shapes_and_depth() {
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "mlp",
            &[8, 16, 4, 2],
            Activation::Relu,
            0.0,
            &mut rng,
        );
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 2);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[5, 8], 1.0, &mut rng));
        let y = mlp.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[5, 2]);
    }

    #[test]
    fn hidden_plus_output_equals_forward() {
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "mlp",
            &[6, 10, 3],
            Activation::Tanh,
            0.0,
            &mut rng,
        );
        let x = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let xv = g.constant(x.clone());
        let full = mlp.forward(&mut g, xv);
        let hidden = mlp.forward_hidden(&mut g, xv);
        let out = mlp.forward_output(&mut g, hidden);
        for (a, b) in g.value(full).data().iter().zip(g.value(out).data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(g.value(hidden).shape(), &[4, 10]);
    }

    #[test]
    fn mlp_gradients_pass_finite_difference_check() {
        let mut rng = Prng::new(4);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "mlp",
            &[5, 8, 2],
            Activation::Tanh,
            0.0,
            &mut rng,
        );
        let param_ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let labels = vec![0usize, 1, 1];
        let report = check_gradients(
            &mut store,
            &param_ids,
            |store| {
                let mut g = Graph::new(store, false, 0);
                let xv = g.constant(x.clone());
                let logits = mlp.forward(&mut g, xv);
                let loss = g.cross_entropy_logits(logits, &labels);
                let v = g.value(loss).item();
                g.backward(loss);
                v
            },
            1e-2,
            12,
        );
        assert!(
            report.max_rel_error < 3e-2,
            "rel err {}",
            report.max_rel_error
        );
    }

    #[test]
    fn training_with_dropout_produces_stochastic_outputs() {
        let mut rng = Prng::new(5);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "mlp",
            &[4, 32, 2],
            Activation::Relu,
            0.5,
            &mut rng,
        );
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let run = |store: &mut ParamStore, seed: u64| {
            let mut g = Graph::new(store, true, seed);
            let xv = g.constant(x.clone());
            let y = mlp.forward(&mut g, xv);
            g.value(y).data().to_vec()
        };
        let a = run(&mut store, 1);
        let b = run(&mut store, 2);
        assert_ne!(a, b, "different dropout seeds should change the output");
    }
}
