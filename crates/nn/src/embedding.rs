//! Token embedding tables.
//!
//! The original system feeds frozen BERT/RoBERTa layer-11 activations into
//! the trainable encoders. Here the frozen pre-trained encoder is simulated
//! by a frozen, deterministically seeded embedding table (see DESIGN.md,
//! "Substitutions"): it is a fixed, information-preserving featurisation of
//! the token stream, exactly the role the frozen PLM plays in the paper.

use dtdbd_tensor::init;
use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::{Graph, ParamId, ParamStore, Var};

/// A `[vocab, dim]` token embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
    frozen: bool,
}

impl Embedding {
    /// A trainable embedding table.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut Prng,
    ) -> Self {
        let table = store.add(
            format!("{name}.table"),
            init::embedding_normal(&[vocab, dim], rng),
        );
        Self {
            table,
            vocab,
            dim,
            frozen: false,
        }
    }

    /// A frozen embedding table simulating the fixed pre-trained text
    /// encoder (BERT layer-11 activations in the paper). The table never
    /// receives gradient updates.
    pub fn frozen_pretrained(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        seed: u64,
    ) -> Self {
        let mut rng = Prng::new(seed);
        let table = store.add_frozen(
            format!("{name}.pretrained"),
            init::embedding_normal(&[vocab, dim], &mut rng),
        );
        Self {
            table,
            vocab,
            dim,
            frozen: true,
        }
    }

    /// A frozen embedding table with caller-provided vectors. Used to install
    /// the *structured* simulated pre-trained encoder built by
    /// `dtdbd-models` (semantically related tokens share directions, the way
    /// a real PLM clusters them).
    pub fn frozen_from_table(
        store: &mut ParamStore,
        name: &str,
        table: dtdbd_tensor::Tensor,
    ) -> Self {
        assert_eq!(table.ndim(), 2, "embedding table must be [vocab, dim]");
        let vocab = table.shape()[0];
        let dim = table.shape()[1];
        let table = store.add_frozen(format!("{name}.pretrained"), table);
        Self {
            table,
            vocab,
            dim,
            frozen: true,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the table is frozen (non-trainable).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Handle to the underlying table parameter.
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Look up a `[batch, seq]` id matrix, producing `[batch, seq, dim]`.
    pub fn forward(&self, g: &mut Graph<'_>, ids: &[u32], batch: usize, seq: usize) -> Var {
        g.embedding(self.table, ids, batch, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_tensor::Tensor;

    #[test]
    fn lookup_shape_and_determinism() {
        let mut store = ParamStore::new();
        let emb = Embedding::frozen_pretrained(&mut store, "bert", 50, 8, 42);
        assert!(emb.is_frozen());
        assert_eq!(emb.vocab(), 50);
        assert_eq!(emb.dim(), 8);
        let mut g = Graph::new(&mut store, false, 0);
        let out = emb.forward(&mut g, &[0, 1, 2, 3, 4, 5], 2, 3);
        assert_eq!(g.value(out).shape(), &[2, 3, 8]);

        // Same seed -> identical table.
        let mut store2 = ParamStore::new();
        let emb2 = Embedding::frozen_pretrained(&mut store2, "bert", 50, 8, 42);
        assert_eq!(store.value(emb.table()), store2.value(emb2.table()));

        // Different seed -> different table.
        let mut store3 = ParamStore::new();
        let emb3 = Embedding::frozen_pretrained(&mut store3, "bert", 50, 8, 7);
        assert_ne!(store.value(emb.table()), store3.value(emb3.table()));
    }

    #[test]
    fn frozen_table_gets_no_gradient_trainable_does() {
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let frozen = Embedding::frozen_pretrained(&mut store, "frozen", 10, 4, 1);
        let trainable = Embedding::new(&mut store, "train", 10, 4, &mut rng);
        let mut g = Graph::new(&mut store, true, 0);
        let a = frozen.forward(&mut g, &[1, 2], 1, 2);
        let b = trainable.forward(&mut g, &[1, 2], 1, 2);
        let sum_a = g.sum_all(a);
        let sum_b = g.sum_all(b);
        let total = g.add(sum_a, sum_b);
        g.backward(total);
        assert_eq!(store.grad(frozen.table()).norm(), 0.0);
        assert!(store.grad(trainable.table()).norm() > 0.0);
    }

    #[test]
    fn same_token_gets_same_vector() {
        let mut store = ParamStore::new();
        let emb = Embedding::frozen_pretrained(&mut store, "bert", 20, 6, 9);
        let mut g = Graph::new(&mut store, false, 0);
        let out = emb.forward(&mut g, &[7, 7], 1, 2);
        let v = g.value(out);
        let first: Vec<f32> = (0..6).map(|j| v.at(&[0, 0, j])).collect();
        let second: Vec<f32> = (0..6).map(|j| v.at(&[0, 1, j])).collect();
        assert_eq!(first, second);
        assert_ne!(first, vec![0.0; 6]);
    }

    #[test]
    fn out_of_vocab_panics() {
        let mut store = ParamStore::new();
        let emb = Embedding::frozen_pretrained(&mut store, "bert", 5, 2, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = Graph::new(&mut store, false, 0);
            let _ = emb.forward(&mut g, &[9], 1, 1);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn trainable_embedding_learns_under_sgd() {
        // Minimise the norm of one embedding row; it should shrink.
        let mut rng = Prng::new(5);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let before = store.value(emb.table()).row(3).to_vec();
        for _ in 0..20 {
            store.zero_grad();
            let mut g = Graph::new(&mut store, true, 0);
            let out = emb.forward(&mut g, &[3], 1, 1);
            let sq = g.mul(out, out);
            let loss = g.mean_all(sq);
            g.backward(loss);
            let grad = store.grad(emb.table()).clone();
            store.get_mut(emb.table()).value.axpy(-0.5, &grad);
        }
        let after_norm: f32 = store.value(emb.table()).row(3).iter().map(|x| x * x).sum();
        let before_norm: f32 = before.iter().map(|x| x * x).sum();
        assert!(after_norm < before_norm * 0.5);
        // Untouched rows unchanged.
        let row0: f32 = store.grad(emb.table()).row(0).iter().sum();
        assert_eq!(row0, 0.0);
    }

    #[test]
    fn helper_tensor_row_matches_lookup() {
        let mut store = ParamStore::new();
        let emb = Embedding::frozen_pretrained(&mut store, "bert", 8, 3, 2);
        let table = store.value(emb.table()).clone();
        let mut g = Graph::new(&mut store, false, 0);
        let out = emb.forward(&mut g, &[5], 1, 1);
        let looked: Vec<f32> = g.value(out).data().to_vec();
        assert_eq!(looked, table.row(5).to_vec());
        let _ = Tensor::from_vec(looked); // silence unused import in some cfgs
    }
}
