//! M3FEND-style domain memory bank.
//!
//! The memory bank keeps one slot vector per domain. During training the
//! slots are updated (outside the autograd tape) as an exponential moving
//! average of the features of samples that carry that hard domain label.
//! At prediction time the similarity between a sample's feature vector and
//! every slot yields a *soft* (fuzzy) domain distribution — the "potential
//! domain labels" that M3FEND uses to drive its domain adapter, and that the
//! paper's Challenges section motivates as fuzzy labels.

use dtdbd_tensor::{Graph, Tensor, Var};
use std::fmt;

/// Per-domain feature memory with EMA updates.
#[derive(Debug, Clone)]
pub struct DomainMemoryBank {
    slots: Tensor,
    counts: Vec<usize>,
    dim: usize,
    n_domains: usize,
    momentum: f32,
    temperature: f32,
}

/// A plain-data snapshot of a [`DomainMemoryBank`]: every field a restore
/// needs to reproduce the bank exactly, with the slot matrix flattened
/// row-major. Checkpointing layers serialize this (the bank's EMA state
/// lives *outside* any `ParamStore`, so parameter checkpoints alone would
/// silently lose it).
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySnapshot {
    /// Number of domains (slot rows).
    pub n_domains: usize,
    /// Feature dimension (slot width).
    pub dim: usize,
    /// EMA momentum of slot updates.
    pub momentum: f32,
    /// Softmax temperature of the soft domain distribution.
    pub temperature: f32,
    /// Row-major `[n_domains * dim]` slot values.
    pub slots: Vec<f32>,
    /// Samples absorbed per slot (`n_domains` entries).
    pub counts: Vec<u64>,
}

/// Why a [`MemorySnapshot`] cannot be restored into a live bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(String);

impl SnapshotError {
    /// Human-readable description of the inconsistency.
    pub fn detail(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid memory-bank snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

impl DomainMemoryBank {
    /// Create an empty bank for `n_domains` domains of `dim`-dimensional
    /// features. `momentum` controls the EMA update (`0.9` keeps slots
    /// stable); `temperature` controls how peaked the soft domain
    /// distribution is.
    pub fn new(n_domains: usize, dim: usize, momentum: f32, temperature: f32) -> Self {
        assert!(n_domains > 0 && dim > 0);
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(temperature > 0.0, "temperature must be positive");
        Self {
            slots: Tensor::zeros(&[n_domains, dim]),
            counts: vec![0; n_domains],
            dim,
            n_domains,
            momentum,
            temperature,
        }
    }

    /// Number of domains (slots).
    pub fn n_domains(&self) -> usize {
        self.n_domains
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// EMA momentum of slot updates.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Softmax temperature of the soft domain distribution.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Capture every field of the bank into a plain-data [`MemorySnapshot`]
    /// (slot values copied bit-for-bit).
    pub fn snapshot(&self) -> MemorySnapshot {
        MemorySnapshot {
            n_domains: self.n_domains,
            dim: self.dim,
            momentum: self.momentum,
            temperature: self.temperature,
            slots: self.slots.data().to_vec(),
            counts: self.counts.iter().map(|&c| c as u64).collect(),
        }
    }

    /// Rebuild a bank from a snapshot, restoring slots, counts and the EMA
    /// hyper-parameters bit-exactly. Every structural inconsistency is a
    /// typed [`SnapshotError`] — a checkpoint loader must never panic on
    /// attacker-controlled bytes.
    pub fn from_snapshot(snapshot: &MemorySnapshot) -> Result<Self, SnapshotError> {
        let MemorySnapshot {
            n_domains,
            dim,
            momentum,
            temperature,
            ref slots,
            ref counts,
        } = *snapshot;
        if n_domains == 0 || dim == 0 {
            return Err(SnapshotError(format!(
                "empty geometry ({n_domains} domains x {dim} dims)"
            )));
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(SnapshotError(format!("momentum {momentum} outside [0, 1)")));
        }
        if temperature.is_nan() || temperature <= 0.0 {
            return Err(SnapshotError(format!(
                "temperature {temperature} not positive"
            )));
        }
        let expected = n_domains
            .checked_mul(dim)
            .ok_or_else(|| SnapshotError(format!("{n_domains} x {dim} slots overflow")))?;
        if slots.len() != expected {
            return Err(SnapshotError(format!(
                "{} slot values for a [{n_domains}, {dim}] bank (need {expected})",
                slots.len()
            )));
        }
        if counts.len() != n_domains {
            return Err(SnapshotError(format!(
                "{} counts for {n_domains} domains",
                counts.len()
            )));
        }
        Ok(Self {
            slots: Tensor::new(vec![n_domains, dim], slots.clone()),
            counts: counts.iter().map(|&c| c as usize).collect(),
            dim,
            n_domains,
            momentum,
            temperature,
        })
    }

    /// Borrow the raw slot matrix (`[n_domains, dim]`).
    pub fn slots(&self) -> &Tensor {
        &self.slots
    }

    /// Number of samples that have contributed to each slot.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// EMA-update the slots with a batch of features (`[b, dim]`) and their
    /// hard domain labels.
    ///
    /// # Panics
    /// Panics if shapes or label ranges are inconsistent.
    pub fn update(&mut self, features: &Tensor, domains: &[usize]) {
        assert_eq!(features.ndim(), 2, "features must be [b, dim]");
        assert_eq!(features.shape()[1], self.dim, "feature dim mismatch");
        assert_eq!(features.shape()[0], domains.len(), "batch size mismatch");
        for (i, &d) in domains.iter().enumerate() {
            assert!(d < self.n_domains, "domain label {d} out of range");
            let row = features.row(i);
            let first_time = self.counts[d] == 0;
            let slot_offset = d * self.dim;
            let slot = &mut self.slots.data_mut()[slot_offset..slot_offset + self.dim];
            if first_time {
                slot.copy_from_slice(row);
            } else {
                for (s, &f) in slot.iter_mut().zip(row.iter()) {
                    *s = self.momentum * *s + (1.0 - self.momentum) * f;
                }
            }
            self.counts[d] += 1;
        }
    }

    /// Soft domain distribution for a batch of plain-tensor features
    /// (`[b, dim] -> [b, n_domains]`), computed from negative squared
    /// distances to the slots divided by the temperature.
    pub fn soft_domains(&self, features: &Tensor) -> Tensor {
        assert_eq!(features.shape()[1], self.dim, "feature dim mismatch");
        let b = features.shape()[0];
        let mut logits = Tensor::zeros(&[b, self.n_domains]);
        for i in 0..b {
            let f = features.row(i);
            for d in 0..self.n_domains {
                let slot = &self.slots.data()[d * self.dim..(d + 1) * self.dim];
                let mut dist = 0.0f32;
                for (a, s) in f.iter().zip(slot.iter()) {
                    let diff = a - s;
                    dist += diff * diff;
                }
                logits.set2(i, d, -dist / self.temperature);
            }
        }
        logits.softmax_rows()
    }

    /// Record the soft domain distribution on an autograd tape as a constant
    /// gate input (the memory itself is not differentiated through, matching
    /// M3FEND's design where the memory is updated by moving averages).
    pub fn soft_domains_var(&self, g: &mut Graph<'_>, features: &Tensor) -> Var {
        let soft = self.soft_domains(features);
        g.constant(soft)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_tensor::rng::Prng;

    fn clustered_features(
        rng: &mut Prng,
        centers: &[Vec<f32>],
        per: usize,
    ) -> (Tensor, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (d, c) in centers.iter().enumerate() {
            for _ in 0..per {
                let row: Vec<f32> = c.iter().map(|&v| v + 0.05 * rng.normal()).collect();
                rows.push(Tensor::from_vec(row));
                labels.push(d);
            }
        }
        (Tensor::stack_rows(&rows), labels)
    }

    #[test]
    fn slots_move_towards_domain_means() {
        let mut rng = Prng::new(1);
        let centers = vec![vec![1.0, 0.0, 0.0], vec![0.0, 2.0, 0.0]];
        let (features, labels) = clustered_features(&mut rng, &centers, 30);
        let mut bank = DomainMemoryBank::new(2, 3, 0.8, 1.0);
        bank.update(&features, &labels);
        let slot0 = bank.slots().row(0);
        let slot1 = bank.slots().row(1);
        assert!((slot0[0] - 1.0).abs() < 0.2, "slot0 {slot0:?}");
        assert!((slot1[1] - 2.0).abs() < 0.2, "slot1 {slot1:?}");
        assert_eq!(bank.counts(), &[30, 30]);
    }

    #[test]
    fn soft_domains_peak_on_the_true_domain() {
        let mut rng = Prng::new(2);
        let centers = vec![vec![3.0, 0.0], vec![0.0, 3.0], vec![-3.0, -3.0]];
        let (features, labels) = clustered_features(&mut rng, &centers, 20);
        let mut bank = DomainMemoryBank::new(3, 2, 0.7, 2.0);
        bank.update(&features, &labels);
        let probe = Tensor::from_rows(&[vec![2.9, 0.1], vec![-2.8, -3.1]]);
        let soft = bank.soft_domains(&probe);
        assert_eq!(soft.argmax_rows(), vec![0, 2]);
        for i in 0..2 {
            let s: f32 = soft.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn higher_temperature_gives_fuzzier_labels() {
        let mut rng = Prng::new(3);
        let centers = vec![vec![2.0, 0.0], vec![-2.0, 0.0]];
        let (features, labels) = clustered_features(&mut rng, &centers, 10);
        let probe = Tensor::from_rows(&[vec![1.9, 0.0]]);
        let mut sharp = DomainMemoryBank::new(2, 2, 0.7, 0.5);
        sharp.update(&features, &labels);
        let mut fuzzy = DomainMemoryBank::new(2, 2, 0.7, 50.0);
        fuzzy.update(&features, &labels);
        assert!(sharp.soft_domains(&probe).at2(0, 0) > fuzzy.soft_domains(&probe).at2(0, 0));
        assert!(fuzzy.soft_domains(&probe).at2(0, 0) > 0.5);
    }

    #[test]
    fn soft_domains_var_is_constant_on_the_tape() {
        let mut rng = Prng::new(4);
        let centers = vec![vec![1.0, 1.0], vec![-1.0, -1.0]];
        let (features, labels) = clustered_features(&mut rng, &centers, 5);
        let mut bank = DomainMemoryBank::new(2, 2, 0.7, 1.0);
        bank.update(&features, &labels);
        let mut store = dtdbd_tensor::ParamStore::new();
        let mut g = Graph::new(&mut store, true, 0);
        let v = bank.soft_domains_var(&mut g, &features);
        assert_eq!(g.value(v).shape(), &[10, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_domain_label_panics() {
        let mut bank = DomainMemoryBank::new(2, 2, 0.5, 1.0);
        let feats = Tensor::from_rows(&[vec![0.0, 0.0]]);
        bank.update(&feats, &[5]);
    }

    #[test]
    fn snapshot_round_trips_every_field_bit_exactly() {
        let mut rng = Prng::new(5);
        let centers = vec![vec![1.0, -0.0, 2.5], vec![-1.0, 0.125, -3.0]];
        let (features, labels) = clustered_features(&mut rng, &centers, 7);
        let mut bank = DomainMemoryBank::new(2, 3, 0.85, 1.5);
        bank.update(&features, &labels);

        let snapshot = bank.snapshot();
        let restored = DomainMemoryBank::from_snapshot(&snapshot).unwrap();
        assert_eq!(restored.n_domains(), bank.n_domains());
        assert_eq!(restored.dim(), bank.dim());
        assert_eq!(restored.momentum().to_bits(), bank.momentum().to_bits());
        assert_eq!(
            restored.temperature().to_bits(),
            bank.temperature().to_bits()
        );
        assert_eq!(restored.counts(), bank.counts());
        for (a, b) in restored.slots().data().iter().zip(bank.slots().data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "slots must restore bit-exactly");
        }
        // The restored bank behaves identically: same soft domains, and the
        // EMA continues from the restored counts (not from scratch).
        let probe = Tensor::from_rows(&[vec![0.9, 0.0, 2.4]]);
        assert_eq!(
            bank.soft_domains(&probe).data(),
            restored.soft_domains(&probe).data()
        );
        assert_eq!(restored.snapshot(), snapshot, "snapshot is idempotent");
    }

    #[test]
    fn invalid_snapshots_are_typed_errors_not_panics() {
        let good = DomainMemoryBank::new(2, 3, 0.9, 2.0).snapshot();
        let cases: Vec<(&str, MemorySnapshot)> = vec![
            (
                "zero domains",
                MemorySnapshot {
                    n_domains: 0,
                    ..good.clone()
                },
            ),
            (
                "zero dim",
                MemorySnapshot {
                    dim: 0,
                    ..good.clone()
                },
            ),
            (
                "momentum out of range",
                MemorySnapshot {
                    momentum: 1.0,
                    ..good.clone()
                },
            ),
            (
                "NaN momentum",
                MemorySnapshot {
                    momentum: f32::NAN,
                    ..good.clone()
                },
            ),
            (
                "non-positive temperature",
                MemorySnapshot {
                    temperature: 0.0,
                    ..good.clone()
                },
            ),
            (
                "NaN temperature",
                MemorySnapshot {
                    temperature: f32::NAN,
                    ..good.clone()
                },
            ),
            (
                "slot length mismatch",
                MemorySnapshot {
                    slots: vec![0.0; 5],
                    ..good.clone()
                },
            ),
            (
                "count length mismatch",
                MemorySnapshot {
                    counts: vec![0; 3],
                    ..good.clone()
                },
            ),
        ];
        for (label, snapshot) in cases {
            assert!(
                DomainMemoryBank::from_snapshot(&snapshot).is_err(),
                "{label}: must be rejected"
            );
        }
        assert!(DomainMemoryBank::from_snapshot(&good).is_ok());
    }
}
