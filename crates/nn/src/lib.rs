//! # dtdbd-nn
//!
//! Neural-network building blocks for the DTDBD reproduction, written on top
//! of the [`dtdbd_tensor`] autograd substrate.
//!
//! Every layer follows the same pattern: construction registers its
//! parameters in a caller-provided [`dtdbd_tensor::ParamStore`] (so the same
//! store can hold a whole model and be handed to an optimizer), and
//! `forward` records ops on a caller-provided [`dtdbd_tensor::Graph`].
//!
//! The blocks provided here are exactly the ones the paper's models need:
//!
//! * [`linear::Linear`] and [`linear::Mlp`] — dense heads and classifiers.
//! * [`embedding::Embedding`] — trainable or frozen ("simulated pre-trained
//!   BERT/RoBERTa activation") token embedding tables.
//! * [`conv::TextCnnEncoder`] — the multi-kernel TextCNN encoder used by the
//!   student (TextCNN-S/U), MDFEND's experts and EANN's feature extractor.
//! * [`rnn::BiGru`] / [`rnn::BiLstm`] — recurrent encoders for BiGRU,
//!   StyleLSTM, DualEmo and MoSE.
//! * [`moe::MixtureOfExperts`] — the gated expert aggregation of MMoE/MoSE
//!   and MDFEND's domain gate.
//! * [`memory::DomainMemoryBank`] — M3FEND-style per-domain memory used to
//!   produce soft (fuzzy) domain labels.
//! * [`adversary::DomainAdversary`] — gradient-reversal domain classifier
//!   used by EANN, EDDFN and the unbiased teacher (DAT / DAT-IE).

pub mod adversary;
pub mod conv;
pub mod embedding;
pub mod linear;
pub mod memory;
pub mod moe;
pub mod rnn;

pub use adversary::DomainAdversary;
pub use conv::TextCnnEncoder;
pub use embedding::Embedding;
pub use linear::{Activation, Linear, Mlp};
pub use memory::{DomainMemoryBank, MemorySnapshot, SnapshotError};
pub use moe::MixtureOfExperts;
pub use rnn::{BiGru, BiLstm, Gru, Lstm};
