//! TextCNN-style convolutional sequence encoders (Kim, 2014).
//!
//! The convolution itself runs as **im2row → blocked GEMM**: the graph op
//! behind [`dtdbd_tensor::Graph::conv1d`] unfolds the `[b, s, d]` input into
//! a `[b·(s-k+1), k·d]` row matrix (each window one contiguous memcpy,
//! because windows are contiguous in a row-major `[s, d]` layout), seeds the
//! output with the bias, and accumulates the `[oc, k·d]` weight through the
//! fused `A·Bᵀ` kernel. Per output element the arithmetic order is exactly
//! the naive nested-loop order (`bias + Σ x·w` over ascending `(ki, j)`),
//! so the GEMM form is bit-identical to a direct convolution — and, by the
//! kernels' determinism contract, bit-identical at any intra-op thread
//! count. `conv_matches_naive_reference_bit_for_bit` below pins both.

use dtdbd_tensor::init;
use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::{Graph, ParamId, ParamStore, Var};

/// One 1-D convolution "branch" of a TextCNN: a kernel of a single width
/// followed by ReLU and max-over-time pooling.
#[derive(Debug, Clone)]
pub struct ConvBranch {
    weight: ParamId,
    bias: ParamId,
    kernel: usize,
    channels: usize,
}

impl ConvBranch {
    /// Register a branch with `channels` output channels and width `kernel`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        channels: usize,
        kernel: usize,
        rng: &mut Prng,
    ) -> Self {
        let weight = store.add(
            format!("{name}.weight"),
            init::xavier_uniform(kernel * in_dim, channels, &[channels, kernel, in_dim], rng),
        );
        store.get_mut(weight).quantizable = true;
        let bias = store.add(format!("{name}.bias"), init::zeros(&[channels]));
        Self {
            weight,
            bias,
            kernel,
            channels,
        }
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Number of output channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Apply conv -> ReLU -> max-over-time to a `[b, s, d]` input, producing
    /// `[b, channels]`. The convolution dispatches through
    /// [`Graph::conv1d_param`], so graphs with an int8 registry run the
    /// fused quantized kernel and every other graph composes the exact
    /// `param → conv1d` sequence as before.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let conv = g.conv1d_param(x, self.weight, self.bias);
        let act = g.relu(conv);
        g.max_over_time(act)
    }
}

/// The multi-kernel TextCNN encoder: several [`ConvBranch`]es whose pooled
/// outputs are concatenated.
///
/// The paper's configurations map to this type as follows:
///
/// * baseline TextCNN / MDFEND expert: kernels `{1, 2, 3, 5, 10}` × 64
///   channels;
/// * the student TextCNN-S / TextCNN-U: kernels `{1, 2, 3, 5}` × 64 channels
///   on top of the frozen pre-trained embedding.
#[derive(Debug, Clone)]
pub struct TextCnnEncoder {
    branches: Vec<ConvBranch>,
    in_dim: usize,
}

impl TextCnnEncoder {
    /// Build an encoder with one branch per kernel width.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        channels: usize,
        kernels: &[usize],
        rng: &mut Prng,
    ) -> Self {
        assert!(
            !kernels.is_empty(),
            "TextCnnEncoder needs at least one kernel"
        );
        let branches = kernels
            .iter()
            .map(|&k| ConvBranch::new(store, &format!("{name}.k{k}"), in_dim, channels, k, rng))
            .collect();
        Self { branches, in_dim }
    }

    /// Input (embedding) dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Dimension of the concatenated output feature.
    pub fn out_dim(&self) -> usize {
        self.branches.iter().map(ConvBranch::channels).sum()
    }

    /// Largest kernel width (the minimum usable sequence length).
    pub fn max_kernel(&self) -> usize {
        self.branches
            .iter()
            .map(ConvBranch::kernel)
            .max()
            .unwrap_or(1)
    }

    /// Encode a `[b, s, d]` embedded sequence into `[b, out_dim]`.
    ///
    /// # Panics
    /// Panics if the sequence is shorter than the largest kernel.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let pooled: Vec<Var> = self.branches.iter().map(|br| br.forward(g, x)).collect();
        if pooled.len() == 1 {
            pooled[0]
        } else {
            g.concat_last(&pooled)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_tensor::gradcheck::check_gradients;
    use dtdbd_tensor::Tensor;

    #[test]
    fn encoder_output_dim_is_channels_times_kernels() {
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 16, 8, &[1, 2, 3, 5], &mut rng);
        assert_eq!(enc.out_dim(), 32);
        assert_eq!(enc.max_kernel(), 5);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[3, 12, 16], 1.0, &mut rng));
        let y = enc.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[3, 32]);
    }

    #[test]
    fn single_branch_skips_concat() {
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 8, 4, &[3], &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[2, 6, 8], 1.0, &mut rng));
        let y = enc.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 4]);
    }

    #[test]
    fn pooled_features_are_nonnegative_after_relu() {
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 8, 16, &[2, 3], &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[4, 10, 8], 1.0, &mut rng));
        let y = enc.forward(&mut g, x);
        assert!(g.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn encoder_gradients_pass_finite_difference_check() {
        let mut rng = Prng::new(4);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 5, 3, &[2, 3], &mut rng);
        let head_w = store.add("head", Tensor::randn(&[6, 2], 0.4, &mut rng));
        let param_ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        let x = Tensor::randn(&[3, 7, 5], 1.0, &mut rng);
        let labels = vec![0usize, 1, 0];
        let report = check_gradients(
            &mut store,
            &param_ids,
            |store| {
                let mut g = Graph::new(store, false, 0);
                let xv = g.constant(x.clone());
                let feat = enc.forward(&mut g, xv);
                let w = g.param(head_w);
                let logits = g.matmul(feat, w);
                let loss = g.cross_entropy_logits(logits, &labels);
                let v = g.value(loss).item();
                g.backward(loss);
                v
            },
            // Small eps: the ReLU + max-over-time composition is piecewise
            // linear, and a larger perturbation can cross an argmax boundary.
            1e-3,
            10,
        );
        assert!(
            report.max_rel_error < 5e-2,
            "rel err {}",
            report.max_rel_error
        );
    }

    #[test]
    fn conv_matches_naive_reference_bit_for_bit() {
        // Direct nested-loop convolution, the pre-im2row arithmetic.
        fn naive_conv1d(
            x: &[f32],
            w: &[f32],
            bias: &[f32],
            (b, s, d): (usize, usize, usize),
            (oc, k): (usize, usize),
        ) -> Vec<f32> {
            let out_s = s - k + 1;
            let mut out = vec![0.0f32; b * out_s * oc];
            for i in 0..b {
                for t in 0..out_s {
                    for o in 0..oc {
                        let mut acc = bias[o];
                        for ki in 0..k {
                            let x_off = i * s * d + (t + ki) * d;
                            let w_off = o * k * d + ki * d;
                            for j in 0..d {
                                acc += x[x_off + j] * w[w_off + j];
                            }
                        }
                        out[i * out_s * oc + t * oc + o] = acc;
                    }
                }
            }
            out
        }

        let mut rng = Prng::new(6);
        for (b, s, d, oc, k) in [(1, 3, 1, 1, 2), (3, 11, 5, 7, 3), (4, 16, 8, 6, 5)] {
            let x = Tensor::randn(&[b, s, d], 1.0, &mut rng);
            let w = Tensor::randn(&[oc, k, d], 0.5, &mut rng);
            let bias = Tensor::randn(&[oc], 0.2, &mut rng);
            let want = naive_conv1d(x.data(), w.data(), bias.data(), (b, s, d), (oc, k));
            for threads in [1usize, 2, 4] {
                let mut store = ParamStore::new();
                let mut g = Graph::new(&mut store, false, 0);
                g.set_threads(threads);
                let xv = g.constant(x.clone());
                let wv = g.constant(w.clone());
                let bv = g.constant(bias.clone());
                let y = g.conv1d(xv, wv, bv);
                assert_eq!(g.value(y).shape(), &[b, s - k + 1, oc]);
                for (i, (a, e)) in g.value(y).data().iter().zip(&want).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        e.to_bits(),
                        "({b},{s},{d},{oc},{k}) t={threads} elem {i}: {a} vs {e}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn too_short_sequence_panics() {
        let mut rng = Prng::new(5);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 4, 2, &[5], &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[1, 3, 4], 1.0, &mut rng));
        let _ = enc.forward(&mut g, x);
    }
}
