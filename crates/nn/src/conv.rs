//! TextCNN-style convolutional sequence encoders (Kim, 2014).

use dtdbd_tensor::init;
use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::{Graph, ParamId, ParamStore, Var};

/// One 1-D convolution "branch" of a TextCNN: a kernel of a single width
/// followed by ReLU and max-over-time pooling.
#[derive(Debug, Clone)]
pub struct ConvBranch {
    weight: ParamId,
    bias: ParamId,
    kernel: usize,
    channels: usize,
}

impl ConvBranch {
    /// Register a branch with `channels` output channels and width `kernel`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        channels: usize,
        kernel: usize,
        rng: &mut Prng,
    ) -> Self {
        let weight = store.add(
            format!("{name}.weight"),
            init::xavier_uniform(kernel * in_dim, channels, &[channels, kernel, in_dim], rng),
        );
        let bias = store.add(format!("{name}.bias"), init::zeros(&[channels]));
        Self {
            weight,
            bias,
            kernel,
            channels,
        }
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Number of output channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Apply conv -> ReLU -> max-over-time to a `[b, s, d]` input, producing
    /// `[b, channels]`.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let w = g.param(self.weight);
        let b = g.param(self.bias);
        let conv = g.conv1d(x, w, b);
        let act = g.relu(conv);
        g.max_over_time(act)
    }
}

/// The multi-kernel TextCNN encoder: several [`ConvBranch`]es whose pooled
/// outputs are concatenated.
///
/// The paper's configurations map to this type as follows:
///
/// * baseline TextCNN / MDFEND expert: kernels `{1, 2, 3, 5, 10}` × 64
///   channels;
/// * the student TextCNN-S / TextCNN-U: kernels `{1, 2, 3, 5}` × 64 channels
///   on top of the frozen pre-trained embedding.
#[derive(Debug, Clone)]
pub struct TextCnnEncoder {
    branches: Vec<ConvBranch>,
    in_dim: usize,
}

impl TextCnnEncoder {
    /// Build an encoder with one branch per kernel width.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        channels: usize,
        kernels: &[usize],
        rng: &mut Prng,
    ) -> Self {
        assert!(
            !kernels.is_empty(),
            "TextCnnEncoder needs at least one kernel"
        );
        let branches = kernels
            .iter()
            .map(|&k| ConvBranch::new(store, &format!("{name}.k{k}"), in_dim, channels, k, rng))
            .collect();
        Self { branches, in_dim }
    }

    /// Input (embedding) dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Dimension of the concatenated output feature.
    pub fn out_dim(&self) -> usize {
        self.branches.iter().map(ConvBranch::channels).sum()
    }

    /// Largest kernel width (the minimum usable sequence length).
    pub fn max_kernel(&self) -> usize {
        self.branches
            .iter()
            .map(ConvBranch::kernel)
            .max()
            .unwrap_or(1)
    }

    /// Encode a `[b, s, d]` embedded sequence into `[b, out_dim]`.
    ///
    /// # Panics
    /// Panics if the sequence is shorter than the largest kernel.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let pooled: Vec<Var> = self.branches.iter().map(|br| br.forward(g, x)).collect();
        if pooled.len() == 1 {
            pooled[0]
        } else {
            g.concat_last(&pooled)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_tensor::gradcheck::check_gradients;
    use dtdbd_tensor::Tensor;

    #[test]
    fn encoder_output_dim_is_channels_times_kernels() {
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 16, 8, &[1, 2, 3, 5], &mut rng);
        assert_eq!(enc.out_dim(), 32);
        assert_eq!(enc.max_kernel(), 5);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[3, 12, 16], 1.0, &mut rng));
        let y = enc.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[3, 32]);
    }

    #[test]
    fn single_branch_skips_concat() {
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 8, 4, &[3], &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[2, 6, 8], 1.0, &mut rng));
        let y = enc.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 4]);
    }

    #[test]
    fn pooled_features_are_nonnegative_after_relu() {
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 8, 16, &[2, 3], &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[4, 10, 8], 1.0, &mut rng));
        let y = enc.forward(&mut g, x);
        assert!(g.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn encoder_gradients_pass_finite_difference_check() {
        let mut rng = Prng::new(4);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 5, 3, &[2, 3], &mut rng);
        let head_w = store.add("head", Tensor::randn(&[6, 2], 0.4, &mut rng));
        let param_ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        let x = Tensor::randn(&[3, 7, 5], 1.0, &mut rng);
        let labels = vec![0usize, 1, 0];
        let report = check_gradients(
            &mut store,
            &param_ids,
            |store| {
                let mut g = Graph::new(store, false, 0);
                let xv = g.constant(x.clone());
                let feat = enc.forward(&mut g, xv);
                let w = g.param(head_w);
                let logits = g.matmul(feat, w);
                let loss = g.cross_entropy_logits(logits, &labels);
                let v = g.value(loss).item();
                g.backward(loss);
                v
            },
            // Small eps: the ReLU + max-over-time composition is piecewise
            // linear, and a larger perturbation can cross an argmax boundary.
            1e-3,
            10,
        );
        assert!(
            report.max_rel_error < 5e-2,
            "rel err {}",
            report.max_rel_error
        );
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn too_short_sequence_panics() {
        let mut rng = Prng::new(5);
        let mut store = ParamStore::new();
        let enc = TextCnnEncoder::new(&mut store, "cnn", 4, 2, &[5], &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[1, 3, 4], 1.0, &mut rng));
        let _ = enc.forward(&mut g, x);
    }
}
