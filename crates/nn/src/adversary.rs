//! Gradient-reversal domain adversary (Ganin & Lempitsky, 2015).
//!
//! Used in three places in the reproduction:
//!
//! * EANN's event/domain discriminator,
//! * EDDFN's cross-domain branch,
//! * the unbiased teacher of DTDBD, trained with DAT or DAT-IE (Eq. 7–11).

use crate::linear::{Activation, Mlp};
use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::{Graph, ParamStore, Var};

/// A domain classifier preceded by a gradient reversal layer.
#[derive(Debug, Clone)]
pub struct DomainAdversary {
    classifier: Mlp,
    lambda: f32,
    n_domains: usize,
}

impl DomainAdversary {
    /// Build an adversary over `feature_dim`-dimensional representations for
    /// `n_domains` domains. `lambda` scales the reversed gradient (α in the
    /// paper's Eq. 11).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        feature_dim: usize,
        hidden: usize,
        n_domains: usize,
        lambda: f32,
        rng: &mut Prng,
    ) -> Self {
        let classifier = Mlp::new(
            store,
            &format!("{name}.domain_clf"),
            &[feature_dim, hidden, n_domains],
            Activation::Relu,
            0.0,
            rng,
        );
        Self {
            classifier,
            lambda,
            n_domains,
        }
    }

    /// Number of domains the adversary discriminates between.
    pub fn n_domains(&self) -> usize {
        self.n_domains
    }

    /// Gradient-reversal scale.
    pub fn lambda(&self) -> f32 {
        self.lambda
    }

    /// Change the gradient-reversal scale (used by warm-up schedules).
    pub fn set_lambda(&mut self, lambda: f32) {
        self.lambda = lambda;
    }

    /// Domain logits computed *through* the gradient-reversal layer: the
    /// domain classifier itself is trained to predict the domain, while the
    /// upstream encoder receives the reversed gradient and is pushed towards
    /// domain-invariant features.
    pub fn forward(&self, g: &mut Graph<'_>, features: Var) -> Var {
        let reversed = g.grad_reverse(features, self.lambda);
        self.classifier.forward(g, reversed)
    }

    /// Domain logits *without* gradient reversal (used when only the domain
    /// classifier should learn, e.g. for probing/diagnostics).
    pub fn forward_plain(&self, g: &mut Graph<'_>, features: Var) -> Var {
        self.classifier.forward(g, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_tensor::{ParamId, Tensor};

    fn setup(lambda: f32) -> (ParamStore, DomainAdversary, ParamId) {
        let mut rng = Prng::new(11);
        let mut store = ParamStore::new();
        // A fake "encoder" parameter so we can observe the reversed gradient.
        let enc = store.add("encoder", Tensor::randn(&[4, 6], 0.5, &mut rng));
        let adv = DomainAdversary::new(&mut store, "adv", 6, 8, 3, lambda, &mut rng);
        (store, adv, enc)
    }

    #[test]
    fn output_shape_matches_domain_count() {
        let (mut store, adv, enc) = setup(1.0);
        assert_eq!(adv.n_domains(), 3);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[5, 4], 1.0, &mut Prng::new(2)));
        let e = g.param(enc);
        let feats = g.matmul(x, e);
        let logits = adv.forward(&mut g, feats);
        assert_eq!(g.value(logits).shape(), &[5, 3]);
    }

    #[test]
    fn encoder_gradient_is_reversed_relative_to_plain_head() {
        let labels = vec![0usize, 1, 2, 0, 1];
        let x = Tensor::randn(&[5, 4], 1.0, &mut Prng::new(3));

        let run = |reversed: bool, lambda: f32| -> Tensor {
            let (mut store, adv, enc) = setup(lambda);
            store.zero_grad();
            let mut g = Graph::new(&mut store, false, 0);
            let xv = g.constant(x.clone());
            let e = g.param(enc);
            let feats = g.matmul(xv, e);
            let logits = if reversed {
                adv.forward(&mut g, feats)
            } else {
                adv.forward_plain(&mut g, feats)
            };
            let loss = g.cross_entropy_logits(logits, &labels);
            g.backward(loss);
            store.grad(enc).clone()
        };

        let rev = run(true, 1.0);
        let plain = run(false, 1.0);
        // With identical initialisation (same seed), the reversed gradient is
        // exactly the negative of the plain gradient.
        for (a, b) in rev.data().iter().zip(plain.data().iter()) {
            assert!((a + b).abs() < 1e-5, "expected reversal, got {a} vs {b}");
        }

        let rev_half = run(true, 0.5);
        for (a, b) in rev_half.data().iter().zip(plain.data().iter()) {
            assert!((a + 0.5 * b).abs() < 1e-5);
        }
    }

    #[test]
    fn domain_classifier_itself_still_learns() {
        // The classifier head's own gradients are NOT reversed, so its
        // gradient should be identical whether or not the GRL is present.
        let labels = vec![0usize, 1, 2, 0, 1];
        let x = Tensor::randn(&[5, 4], 1.0, &mut Prng::new(5));
        let grads = |reversed: bool| -> Vec<f32> {
            let (mut store, adv, enc) = setup(1.0);
            store.zero_grad();
            let mut g = Graph::new(&mut store, false, 0);
            let xv = g.constant(x.clone());
            let e = g.param(enc);
            let feats = g.matmul(xv, e);
            let logits = if reversed {
                adv.forward(&mut g, feats)
            } else {
                adv.forward_plain(&mut g, feats)
            };
            let loss = g.cross_entropy_logits(logits, &labels);
            g.backward(loss);
            // Collect all classifier grads (everything except the encoder).
            store
                .iter()
                .filter(|(id, p)| *id != enc && p.trainable)
                .flat_map(|(_, p)| p.grad.data().to_vec())
                .collect()
        };
        let with = grads(true);
        let without = grads(false);
        for (a, b) in with.iter().zip(without.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn lambda_accessors() {
        let (_, mut adv, _) = setup(0.3);
        assert_eq!(adv.lambda(), 0.3);
        adv.set_lambda(0.9);
        assert_eq!(adv.lambda(), 0.9);
    }
}
