//! Gated mixture-of-experts aggregation.
//!
//! This block implements the expert aggregation mechanism shared by three of
//! the paper's baselines:
//!
//! * **MMoE** — MLP experts combined by a softmax gate conditioned on the
//!   input representation;
//! * **MoSE** — the same gate over sequential (LSTM) experts, whose outputs
//!   are supplied by the caller;
//! * **MDFEND** — TextCNN experts combined by a gate conditioned on the
//!   domain embedding (the "learnable domain gate").

use crate::linear::{Activation, Mlp};
use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::{Graph, ParamStore, Var};

/// A softmax gate that mixes `n_experts` feature vectors.
#[derive(Debug, Clone)]
pub struct ExpertGate {
    gate: Mlp,
    n_experts: usize,
}

impl ExpertGate {
    /// Build a gate conditioned on a `gate_in_dim`-dimensional input.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        gate_in_dim: usize,
        n_experts: usize,
        rng: &mut Prng,
    ) -> Self {
        let gate = Mlp::new(
            store,
            &format!("{name}.gate"),
            &[gate_in_dim, n_experts],
            Activation::Relu,
            0.0,
            rng,
        );
        Self { gate, n_experts }
    }

    /// Number of experts mixed by the gate.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// Softmax mixture weights `[batch, n_experts]` given the gate input.
    pub fn weights(&self, g: &mut Graph<'_>, gate_input: Var) -> Var {
        let logits = self.gate.forward(g, gate_input);
        g.softmax(logits)
    }

    /// Mix pre-computed expert outputs (`expert_outputs[e]` is `[b, d]`)
    /// using weights computed from `gate_input`.
    ///
    /// # Panics
    /// Panics if the number of expert outputs differs from `n_experts`.
    pub fn mix(&self, g: &mut Graph<'_>, gate_input: Var, expert_outputs: &[Var]) -> Var {
        assert_eq!(
            expert_outputs.len(),
            self.n_experts,
            "expected {} expert outputs",
            self.n_experts
        );
        let weights = self.weights(g, gate_input);
        mix_with_weights(g, weights, expert_outputs)
    }
}

/// Mix expert outputs with an explicit `[b, n_experts]` weight matrix
/// (each row need not be normalised; callers usually pass a softmax output).
pub fn mix_with_weights(g: &mut Graph<'_>, weights: Var, expert_outputs: &[Var]) -> Var {
    assert!(!expert_outputs.is_empty(), "no expert outputs to mix");
    let mut acc: Option<Var> = None;
    for (e, &out) in expert_outputs.iter().enumerate() {
        let w_col = g.select_col(weights, e);
        let scaled = g.row_scale(out, w_col);
        acc = Some(match acc {
            Some(a) => g.add(a, scaled),
            None => scaled,
        });
    }
    acc.expect("at least one expert")
}

/// A full mixture-of-experts block with MLP experts (the MMoE baseline's
/// core): each expert maps `[b, in_dim] -> [b, expert_dim]`, and the gate is
/// conditioned on the same input.
#[derive(Debug, Clone)]
pub struct MixtureOfExperts {
    experts: Vec<Mlp>,
    gate: ExpertGate,
    expert_dim: usize,
}

impl MixtureOfExperts {
    /// Build `n_experts` single-hidden-layer MLP experts plus the gate.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        expert_hidden: usize,
        expert_dim: usize,
        n_experts: usize,
        rng: &mut Prng,
    ) -> Self {
        let experts = (0..n_experts)
            .map(|e| {
                Mlp::new(
                    store,
                    &format!("{name}.expert{e}"),
                    &[in_dim, expert_hidden, expert_dim],
                    Activation::Relu,
                    0.0,
                    rng,
                )
            })
            .collect();
        let gate = ExpertGate::new(store, name, in_dim, n_experts, rng);
        Self {
            experts,
            gate,
            expert_dim,
        }
    }

    /// Output dimension of the mixed representation.
    pub fn out_dim(&self) -> usize {
        self.expert_dim
    }

    /// Number of experts.
    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }

    /// Mix the experts' outputs for a `[b, in_dim]` input.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let outputs: Vec<Var> = self.experts.iter().map(|e| e.forward(g, x)).collect();
        self.gate.mix(g, x, &outputs)
    }

    /// Mix the experts' outputs but condition the gate on a separate input
    /// (e.g. a domain embedding, as in MDFEND).
    pub fn forward_gated_by(&self, g: &mut Graph<'_>, x: Var, gate_input: Var) -> Var {
        let outputs: Vec<Var> = self.experts.iter().map(|e| e.forward(g, x)).collect();
        self.gate.mix(g, gate_input, &outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_tensor::gradcheck::check_gradients;
    use dtdbd_tensor::Tensor;

    #[test]
    fn gate_weights_are_a_distribution() {
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let gate = ExpertGate::new(&mut store, "gate", 6, 4, &mut rng);
        assert_eq!(gate.n_experts(), 4);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[3, 6], 1.0, &mut rng));
        let w = gate.weights(&mut g, x);
        assert_eq!(g.value(w).shape(), &[3, 4]);
        for i in 0..3 {
            let s: f32 = g.value(w).row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mixing_with_onehot_weights_selects_an_expert() {
        let mut store = ParamStore::new();
        let mut g = Graph::new(&mut store, false, 0);
        let e0 = g.constant(Tensor::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]));
        let e1 = g.constant(Tensor::from_rows(&[vec![5.0, 5.0], vec![5.0, 5.0]]));
        // First row picks expert 0, second row picks expert 1.
        let w = g.constant(Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]));
        let mixed = mix_with_weights(&mut g, w, &[e0, e1]);
        assert_eq!(g.value(mixed).data(), &[1.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn moe_output_shape() {
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let moe = MixtureOfExperts::new(&mut store, "moe", 8, 16, 10, 5, &mut rng);
        assert_eq!(moe.out_dim(), 10);
        assert_eq!(moe.n_experts(), 5);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[4, 8], 1.0, &mut rng));
        let y = moe.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[4, 10]);
        let y2 = moe.forward_gated_by(&mut g, x, x);
        assert_eq!(g.value(y2).shape(), &[4, 10]);
    }

    #[test]
    fn moe_gradients_pass_finite_difference_check() {
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let moe = MixtureOfExperts::new(&mut store, "moe", 4, 6, 5, 3, &mut rng);
        let head = store.add("head", Tensor::randn(&[5, 2], 0.5, &mut rng));
        let param_ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        let x = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = vec![0usize, 1, 0];
        let report = check_gradients(
            &mut store,
            &param_ids,
            |store| {
                let mut g = Graph::new(store, false, 0);
                let xv = g.constant(x.clone());
                let mixed = moe.forward(&mut g, xv);
                let w = g.param(head);
                let logits = g.matmul(mixed, w);
                let loss = g.cross_entropy_logits(logits, &labels);
                let v = g.value(loss).item();
                g.backward(loss);
                v
            },
            1e-2,
            8,
        );
        assert!(
            report.max_rel_error < 5e-2,
            "rel err {}",
            report.max_rel_error
        );
    }

    #[test]
    #[should_panic(expected = "expected 3 expert outputs")]
    fn wrong_expert_count_panics() {
        let mut rng = Prng::new(4);
        let mut store = ParamStore::new();
        let gate = ExpertGate::new(&mut store, "gate", 4, 3, &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[2, 4], 1.0, &mut rng));
        let e = g.constant(Tensor::randn(&[2, 5], 1.0, &mut rng));
        let _ = gate.mix(&mut g, x, &[e]);
    }
}
