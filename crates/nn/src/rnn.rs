//! Recurrent sequence encoders: GRU / BiGRU and LSTM / BiLSTM.
//!
//! The cells are expressed entirely in terms of the autograd primitives
//! (matmul / sigmoid / tanh / elementwise), so no dedicated backward code is
//! needed and the finite-difference checks in the test module validate the
//! whole unrolled computation.

use dtdbd_tensor::init;
use dtdbd_tensor::rng::Prng;
use dtdbd_tensor::{Graph, ParamId, ParamStore, Tensor, Var};

/// Parameters of a single-direction GRU.
#[derive(Debug, Clone)]
pub struct Gru {
    w_z: ParamId,
    u_z: ParamId,
    b_z: ParamId,
    w_r: ParamId,
    u_r: ParamId,
    b_r: ParamId,
    w_h: ParamId,
    u_h: ParamId,
    b_h: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl Gru {
    /// Register a GRU with the given input and hidden sizes.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Prng,
    ) -> Self {
        let mut gate = |gate_name: &str, rows: usize| {
            store.add(
                format!("{name}.{gate_name}"),
                init::xavier_uniform(rows, hidden, &[rows, hidden], rng),
            )
        };
        let w_z = gate("w_z", in_dim);
        let u_z = gate("u_z", hidden);
        let w_r = gate("w_r", in_dim);
        let u_r = gate("u_r", hidden);
        let w_h = gate("w_h", in_dim);
        let u_h = gate("u_h", hidden);
        let b_z = store.add(format!("{name}.b_z"), init::zeros(&[hidden]));
        let b_r = store.add(format!("{name}.b_r"), init::zeros(&[hidden]));
        let b_h = store.add(format!("{name}.b_h"), init::zeros(&[hidden]));
        Self {
            w_z,
            u_z,
            b_z,
            w_r,
            u_r,
            b_r,
            w_h,
            u_h,
            b_h,
            in_dim,
            hidden,
        }
    }

    /// Hidden state size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input feature size.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// One GRU step: `h' = (1 - z) ⊙ h + z ⊙ tanh(W_h x + U_h (r ⊙ h) + b_h)`.
    pub fn step(&self, g: &mut Graph<'_>, x_t: Var, h: Var) -> Var {
        let w_z = g.param(self.w_z);
        let u_z = g.param(self.u_z);
        let b_z = g.param(self.b_z);
        let w_r = g.param(self.w_r);
        let u_r = g.param(self.u_r);
        let b_r = g.param(self.b_r);
        let w_h = g.param(self.w_h);
        let u_h = g.param(self.u_h);
        let b_h = g.param(self.b_h);

        let xz = g.matmul(x_t, w_z);
        let hz = g.matmul(h, u_z);
        let z_pre = g.add(xz, hz);
        let z_pre = g.add_bias(z_pre, b_z);
        let z = g.sigmoid(z_pre);

        let xr = g.matmul(x_t, w_r);
        let hr = g.matmul(h, u_r);
        let r_pre = g.add(xr, hr);
        let r_pre = g.add_bias(r_pre, b_r);
        let r = g.sigmoid(r_pre);

        let rh = g.mul(r, h);
        let xh = g.matmul(x_t, w_h);
        let hh = g.matmul(rh, u_h);
        let cand_pre = g.add(xh, hh);
        let cand_pre = g.add_bias(cand_pre, b_h);
        let cand = g.tanh(cand_pre);

        let one_minus_z = g.one_minus(z);
        let keep = g.mul(one_minus_z, h);
        let update = g.mul(z, cand);
        g.add(keep, update)
    }

    /// Run over a `[b, s, d]` sequence, returning the hidden state after each
    /// time step (in temporal order when `reverse == false`).
    pub fn forward_states(&self, g: &mut Graph<'_>, x: Var, reverse: bool) -> Vec<Var> {
        let shape = g.value(x).shape().to_vec();
        assert_eq!(shape.len(), 3, "GRU expects a [b, s, d] input");
        let (b, s, _) = (shape[0], shape[1], shape[2]);
        let mut h = g.constant(Tensor::zeros(&[b, self.hidden]));
        let mut states = Vec::with_capacity(s);
        let order: Vec<usize> = if reverse {
            (0..s).rev().collect()
        } else {
            (0..s).collect()
        };
        for t in order {
            let x_t = g.select_time(x, t);
            h = self.step(g, x_t, h);
            states.push(h);
        }
        if reverse {
            states.reverse();
        }
        states
    }

    /// Mean of the hidden states over time: `[b, hidden]`.
    pub fn forward_mean(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let states = self.forward_states(g, x, false);
        mean_of_states(g, &states)
    }

    /// Final hidden state: `[b, hidden]`.
    pub fn forward_last(&self, g: &mut Graph<'_>, x: Var) -> Var {
        *self
            .forward_states(g, x, false)
            .last()
            .expect("sequence must be non-empty")
    }
}

/// Bidirectional GRU; the output feature is the concatenation of the mean
/// hidden state of the forward and backward passes (`[b, 2 * hidden]`).
#[derive(Debug, Clone)]
pub struct BiGru {
    forward: Gru,
    backward: Gru,
}

impl BiGru {
    /// Register both directions.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Prng,
    ) -> Self {
        Self {
            forward: Gru::new(store, &format!("{name}.fwd"), in_dim, hidden, rng),
            backward: Gru::new(store, &format!("{name}.bwd"), in_dim, hidden, rng),
        }
    }

    /// Output dimension (`2 * hidden`).
    pub fn out_dim(&self) -> usize {
        self.forward.hidden() * 2
    }

    /// Encode a `[b, s, d]` sequence into `[b, 2 * hidden]`.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let fwd_states = self.forward.forward_states(g, x, false);
        let bwd_states = self.backward.forward_states(g, x, true);
        let fwd = mean_of_states(g, &fwd_states);
        let bwd = mean_of_states(g, &bwd_states);
        g.concat_last(&[fwd, bwd])
    }
}

/// Parameters of a single-direction LSTM.
#[derive(Debug, Clone)]
pub struct Lstm {
    w_i: ParamId,
    u_i: ParamId,
    b_i: ParamId,
    w_f: ParamId,
    u_f: ParamId,
    b_f: ParamId,
    w_o: ParamId,
    u_o: ParamId,
    b_o: ParamId,
    w_c: ParamId,
    u_c: ParamId,
    b_c: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Register an LSTM with the given input and hidden sizes.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Prng,
    ) -> Self {
        let mut w = |gate: &str, rows: usize| {
            store.add(
                format!("{name}.{gate}"),
                init::xavier_uniform(rows, hidden, &[rows, hidden], rng),
            )
        };
        let w_i = w("w_i", in_dim);
        let u_i = w("u_i", hidden);
        let w_f = w("w_f", in_dim);
        let u_f = w("u_f", hidden);
        let w_o = w("w_o", in_dim);
        let u_o = w("u_o", hidden);
        let w_c = w("w_c", in_dim);
        let u_c = w("u_c", hidden);
        // Forget-gate bias initialised to 1 (standard trick for gradient flow).
        let b_i = store.add(format!("{name}.b_i"), init::zeros(&[hidden]));
        let b_f = store.add(format!("{name}.b_f"), Tensor::full(&[hidden], 1.0));
        let b_o = store.add(format!("{name}.b_o"), init::zeros(&[hidden]));
        let b_c = store.add(format!("{name}.b_c"), init::zeros(&[hidden]));
        Self {
            w_i,
            u_i,
            b_i,
            w_f,
            u_f,
            b_f,
            w_o,
            u_o,
            b_o,
            w_c,
            u_c,
            b_c,
            in_dim,
            hidden,
        }
    }

    /// Hidden state size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input feature size.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// One LSTM step; returns `(h', c')`.
    pub fn step(&self, g: &mut Graph<'_>, x_t: Var, h: Var, c: Var) -> (Var, Var) {
        let gate = |g: &mut Graph<'_>, w, u, b, x_t, h| {
            let wv = g.param(w);
            let uv = g.param(u);
            let bv = g.param(b);
            let xw = g.matmul(x_t, wv);
            let hu = g.matmul(h, uv);
            let pre = g.add(xw, hu);
            g.add_bias(pre, bv)
        };
        let i = gate(g, self.w_i, self.u_i, self.b_i, x_t, h);
        let i = g.sigmoid(i);
        let f = gate(g, self.w_f, self.u_f, self.b_f, x_t, h);
        let f = g.sigmoid(f);
        let o = gate(g, self.w_o, self.u_o, self.b_o, x_t, h);
        let o = g.sigmoid(o);
        let cand = gate(g, self.w_c, self.u_c, self.b_c, x_t, h);
        let cand = g.tanh(cand);

        let keep = g.mul(f, c);
        let write = g.mul(i, cand);
        let c_new = g.add(keep, write);
        let c_act = g.tanh(c_new);
        let h_new = g.mul(o, c_act);
        (h_new, c_new)
    }

    /// Run over a `[b, s, d]` sequence, returning hidden states in temporal
    /// order.
    pub fn forward_states(&self, g: &mut Graph<'_>, x: Var, reverse: bool) -> Vec<Var> {
        let shape = g.value(x).shape().to_vec();
        assert_eq!(shape.len(), 3, "LSTM expects a [b, s, d] input");
        let (b, s, _) = (shape[0], shape[1], shape[2]);
        let mut h = g.constant(Tensor::zeros(&[b, self.hidden]));
        let mut c = g.constant(Tensor::zeros(&[b, self.hidden]));
        let mut states = Vec::with_capacity(s);
        let order: Vec<usize> = if reverse {
            (0..s).rev().collect()
        } else {
            (0..s).collect()
        };
        for t in order {
            let x_t = g.select_time(x, t);
            let (h_new, c_new) = self.step(g, x_t, h, c);
            h = h_new;
            c = c_new;
            states.push(h);
        }
        if reverse {
            states.reverse();
        }
        states
    }

    /// Mean hidden state over time.
    pub fn forward_mean(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let states = self.forward_states(g, x, false);
        mean_of_states(g, &states)
    }

    /// Final hidden state.
    pub fn forward_last(&self, g: &mut Graph<'_>, x: Var) -> Var {
        *self
            .forward_states(g, x, false)
            .last()
            .expect("sequence must be non-empty")
    }
}

/// Bidirectional LSTM; output is the concatenation of both directions' mean
/// hidden states.
#[derive(Debug, Clone)]
pub struct BiLstm {
    forward: Lstm,
    backward: Lstm,
}

impl BiLstm {
    /// Register both directions.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Prng,
    ) -> Self {
        Self {
            forward: Lstm::new(store, &format!("{name}.fwd"), in_dim, hidden, rng),
            backward: Lstm::new(store, &format!("{name}.bwd"), in_dim, hidden, rng),
        }
    }

    /// Output dimension (`2 * hidden`).
    pub fn out_dim(&self) -> usize {
        self.forward.hidden() * 2
    }

    /// Encode a `[b, s, d]` sequence into `[b, 2 * hidden]`.
    pub fn forward(&self, g: &mut Graph<'_>, x: Var) -> Var {
        let fwd_states = self.forward.forward_states(g, x, false);
        let bwd_states = self.backward.forward_states(g, x, true);
        let fwd = mean_of_states(g, &fwd_states);
        let bwd = mean_of_states(g, &bwd_states);
        g.concat_last(&[fwd, bwd])
    }
}

/// Average a list of equally shaped `[b, h]` state tensors.
fn mean_of_states(g: &mut Graph<'_>, states: &[Var]) -> Var {
    assert!(!states.is_empty(), "mean over empty state list");
    let mut acc = states[0];
    for s in &states[1..] {
        acc = g.add(acc, *s);
    }
    g.scale(acc, 1.0 / states.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtdbd_tensor::gradcheck::check_gradients;

    #[test]
    fn gru_shapes() {
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 6, 5, &mut rng);
        assert_eq!(gru.in_dim(), 6);
        assert_eq!(gru.hidden(), 5);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[3, 4, 6], 1.0, &mut rng));
        let states = gru.forward_states(&mut g, x, false);
        assert_eq!(states.len(), 4);
        assert_eq!(g.value(states[0]).shape(), &[3, 5]);
        let mean = gru.forward_mean(&mut g, x);
        assert_eq!(g.value(mean).shape(), &[3, 5]);
        let last = gru.forward_last(&mut g, x);
        assert_eq!(g.value(last).shape(), &[3, 5]);
    }

    #[test]
    fn bigru_concatenates_directions() {
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let rnn = BiGru::new(&mut store, "bigru", 4, 7, &mut rng);
        assert_eq!(rnn.out_dim(), 14);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[2, 5, 4], 1.0, &mut rng));
        let y = rnn.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 14]);
    }

    #[test]
    fn gru_hidden_is_bounded_by_tanh_gate() {
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 3, 4, &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[2, 10, 3], 5.0, &mut rng));
        let last = gru.forward_last(&mut g, x);
        assert!(g.value(last).data().iter().all(|v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn lstm_shapes_and_bilstm() {
        let mut rng = Prng::new(4);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "lstm", 5, 6, &mut rng);
        assert_eq!(lstm.hidden(), 6);
        assert_eq!(lstm.in_dim(), 5);
        let bilstm = BiLstm::new(&mut store, "bilstm", 5, 6, &mut rng);
        assert_eq!(bilstm.out_dim(), 12);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[2, 3, 5], 1.0, &mut rng));
        let h = lstm.forward_mean(&mut g, x);
        assert_eq!(g.value(h).shape(), &[2, 6]);
        let hb = bilstm.forward(&mut g, x);
        assert_eq!(g.value(hb).shape(), &[2, 12]);
    }

    #[test]
    fn reversed_pass_differs_from_forward_pass() {
        let mut rng = Prng::new(5);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 4, 4, &mut rng);
        let mut g = Graph::new(&mut store, false, 0);
        let x = g.constant(Tensor::randn(&[1, 6, 4], 1.0, &mut rng));
        let fwd = gru.forward_states(&mut g, x, false);
        let bwd = gru.forward_states(&mut g, x, true);
        // Both are in temporal order; the first forward state only saw token
        // 0 while the first backward state saw the whole sequence, so they
        // should differ.
        let a = g.value(fwd[0]).data().to_vec();
        let b = g.value(bwd[0]).data().to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn gru_gradients_pass_finite_difference_check() {
        let mut rng = Prng::new(6);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 3, 4, &mut rng);
        let head = store.add("head", Tensor::randn(&[4, 2], 0.5, &mut rng));
        let param_ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        let x = Tensor::randn(&[2, 4, 3], 1.0, &mut rng);
        let labels = vec![1usize, 0];
        let report = check_gradients(
            &mut store,
            &param_ids,
            |store| {
                let mut g = Graph::new(store, false, 0);
                let xv = g.constant(x.clone());
                let feat = gru.forward_mean(&mut g, xv);
                let w = g.param(head);
                let logits = g.matmul(feat, w);
                let loss = g.cross_entropy_logits(logits, &labels);
                let v = g.value(loss).item();
                g.backward(loss);
                v
            },
            1e-2,
            6,
        );
        assert!(
            report.max_rel_error < 5e-2,
            "rel err {}",
            report.max_rel_error
        );
    }

    #[test]
    fn lstm_gradients_pass_finite_difference_check() {
        let mut rng = Prng::new(7);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "lstm", 3, 3, &mut rng);
        let head = store.add("head", Tensor::randn(&[3, 2], 0.5, &mut rng));
        let param_ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
        let x = Tensor::randn(&[2, 3, 3], 1.0, &mut rng);
        let labels = vec![0usize, 1];
        let report = check_gradients(
            &mut store,
            &param_ids,
            |store| {
                let mut g = Graph::new(store, false, 0);
                let xv = g.constant(x.clone());
                let feat = lstm.forward_last(&mut g, xv);
                let w = g.param(head);
                let logits = g.matmul(feat, w);
                let loss = g.cross_entropy_logits(logits, &labels);
                let v = g.value(loss).item();
                g.backward(loss);
                v
            },
            1e-2,
            5,
        );
        assert!(
            report.max_rel_error < 5e-2,
            "rel err {}",
            report.max_rel_error
        );
    }
}
