#!/usr/bin/env bash
# Tier-1 verification gate for the DTDBD workspace (see ROADMAP.md).
#
# Runs, in order:
#   1. release build of every crate, binary, bench and example target
#   2. the full test suite
#   3. formatting check
#   4. clippy with warnings promoted to errors
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 gate passed"
