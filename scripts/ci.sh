#!/usr/bin/env bash
# Tier-1 verification gate for the DTDBD workspace (see ROADMAP.md).
#
# Runs, in order:
#   1. release build of every crate, binary, bench and example target
#   2. the full test suite (dtdbd-integration is a workspace member, so the
#      cross-crate scenarios and the HTTP wire battery run here)
#   3. kernel-parity smoke: the blocked/parallel GEMM must stay bit-identical
#      to the naive reference on a fixed seed (threads 1/2/4)
#   4. the kernels micro-benchmark in its ~2 s smoke configuration, so a
#      regression in the compute hot path shows up in the gate output
#   5. the http_roundtrip end-to-end example (real TCP serving)
#   6. formatting check
#   7. clippy with warnings promoted to errors
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test -q (includes dtdbd-integration: cross-crate scenarios + HTTP wire battery)"
cargo test -q --workspace

echo "==> kernel parity smoke (blocked/parallel GEMM vs naive reference, fixed seed)"
cargo run --release -q -p dtdbd-bench --bin kernels -- --parity-smoke

echo "==> kernels bench (quick smoke: naive vs blocked vs blocked+parallel GFLOP/s)"
cargo run --release -q -p dtdbd-bench --bin kernels -- --quick

echo "==> http_roundtrip example (train -> checkpoint -> serve over TCP)"
cargo run --release -q -p dtdbd-bench --example http_roundtrip

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 gate passed"
