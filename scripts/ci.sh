#!/usr/bin/env bash
# Tier-1 verification gate for the DTDBD workspace (see ROADMAP.md).
#
# Runs, in order:
#   1. release build of every crate, binary, bench and example target
#   2. the full test suite (dtdbd-integration is a workspace member, so the
#      cross-crate scenarios and the HTTP wire battery run here; the sharded
#      serving parity matrix, builder misconfiguration battery, checkpoint
#      corruption + side-state fuzz battery (checkpoint_corruption.rs), the
#      committed v1/v2 byte-fixture compat pins (compat_fixtures.rs) and the
#      zoo-wide train->save->load->serve bit-parity test (zoo_roundtrip.rs)
#      live in crates/serve/tests); on Linux the HTTP integration battery is
#      then re-run pinned to the thread-per-connection pool model, so both
#      connection layers (epoll event loop + portable pool) stay covered,
#      followed by a named re-run of the chaos battery (seeded fault plan
#      kills three prediction workers mid-storm; supervision must heal the
#      server with zero wrong predictions — tests/integration/tests/chaos.rs)
#      and the int8 determinism matrix (quantized predictions bit-identical
#      to themselves across {1,4} intra-op threads x {1,4} shard counts,
#      with routing + cache composed on top —
#      crates/serve/tests/int8_parity.rs), then the hot-swap parity +
#      multi-tenant zoo battery (20 mid-traffic reloads under both
#      connection models with bit-exact answers and reconciled counters,
#      plus shard-pool dedup across tenants —
#      tests/integration/tests/hotswap.rs)
#   3. kernel-parity smoke: the blocked/parallel GEMM must stay bit-identical
#      to the naive reference on a fixed seed (threads 1/2/4), and the int8
#      quantized GEMM bit-identical to itself across thread counts
#   4. bench regression gate (scripts/check_bench.sh): re-runs the quick
#      kernels/serving benches in a throwaway dir and FAILS if throughput
#      dropped more than BENCH_GATE_TOLERANCE percent (default 15) below the
#      committed BENCH_kernels.json / BENCH_serving.json baselines, or if the
#      serving p99 rose more than the tolerance above its baseline; also runs
#      the sharding bench for its parity assertions and replica-vs-sharded
#      log, the fp32-vs-int8 agreement report with absolute gates
#      (agreement >= 99.5%, macro-F1 delta <= 0.005, >=3x int8 memory win),
#      and the two-model zoo routing gate (multi-tenant throughput >= 0.9x
#      single-tenant at equal total workers)
#   5. the http_roundtrip end-to-end example (real TCP serving; also scrapes
#      GET /metrics mid-run, holds the page to the strict exposition lint,
#      and walks the /readyz drain sequence before shutdown)
#   6. formatting check
#   7. clippy with warnings promoted to errors
#
# Modes / knobs:
#   CI_QUICK=1             skip every release-profile stage (1, 3-5: the
#                          release build, parity smoke, bench gate and
#                          example) for a sub-minute inner-loop gate on a
#                          warm build cache — tests + fmt + clippy still run,
#                          and the dev-profile test suite includes the GEMM
#                          bit-parity battery (crates/tensor/tests) plus the
#                          checkpoint corruption/compat-fixture/zoo-parity
#                          batteries (crates/serve/tests)
#   BENCH_GATE_TOLERANCE   allowed bench throughput drop in percent
#                          (default 15; negative forces the gate to trip —
#                          the knob to demonstrate stage 4 failing)
#
# A per-stage wall-clock summary is printed at the end (also on failure).
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

STAGE_NAMES=()
STAGE_SECS=()
stage() {
  local name="$1"
  shift
  echo "==> $name"
  local t0=$SECONDS
  "$@"
  STAGE_NAMES+=("$name")
  STAGE_SECS+=("$((SECONDS - t0))")
}
summary() {
  echo
  echo "==> stage timing (wall clock)"
  local i total=0
  for i in "${!STAGE_NAMES[@]}"; do
    printf '    %4ds  %s\n' "${STAGE_SECS[$i]}" "${STAGE_NAMES[$i]}"
    total=$((total + STAGE_SECS[i]))
  done
  printf '    %4ds  total\n' "$total"
}
trap summary EXIT

quick=${CI_QUICK:-0}

if [ "$quick" = "1" ]; then
  echo "==> CI_QUICK=1: skipping release build, parity smoke, bench gate and example"
else
  stage "cargo build --release" \
    cargo build --release --workspace --all-targets
fi

stage "cargo test (cross-crate scenarios, wire + checkpoint batteries, compat fixtures, zoo + sharding parity)" \
  cargo test -q --workspace

# On Linux the workspace run above exercised the HTTP battery under the
# default epoll event loop; re-run it pinned to the portable
# thread-per-connection pool so both connection models stay bit-parity
# clean. (Elsewhere the pool is the default and the epoll path doesn't
# exist, so one run covers everything.)
if [ "$(uname -s)" = "Linux" ]; then
  stage "http battery under the pool connection model (DTDBD_CONNECTION_MODEL=pool)" \
    env DTDBD_CONNECTION_MODEL=pool cargo test -q -p dtdbd-integration --test http
fi

# Chaos battery: the 64-client wire workload with a seeded fault plan
# killing three of four prediction workers mid-storm, under both connection
# models (tests/integration/tests/chaos.rs). The plan and its kill schedule
# are fixed in the test source, so every CI run injects the same crashes.
# The workspace run above already executed it once at full scale; this
# dedicated stage re-runs it with CI_QUICK shrinking the client count so the
# supervision + fault-injection layer keeps a fast, named gate of its own.
stage "chaos battery (seeded worker kills, supervision + recovery)" \
  env CI_QUICK="$quick" cargo test -q -p dtdbd-integration --test chaos

# Int8 determinism matrix: quantized predictions must be bit-identical to
# themselves at every deployment shape — {1,4} intra-op threads x {1,4}
# shard counts (plus replica mode), and again with domain routing and the
# precision-tagged prediction cache composed on top. Int8 may differ from
# fp32 (the bench gate bounds that drift); it may never differ from itself.
# The workspace run above already executed the battery once; this dedicated
# stage re-runs it with CI_QUICK trimming the matrix corners so the
# quantized path keeps a fast, named gate of its own.
stage "int8 determinism matrix (threads x shards x routing x cache, bit-exact)" \
  env CI_QUICK="$quick" cargo test -q -p dtdbd-serve --test int8_parity

# Hot-swap + multi-tenant battery: a file-backed tenant is reloaded 20 times
# (CI_QUICK shrinks the count) while keep-alive clients stream traffic under
# both connection models — every wire answer must be bit-identical to one of
# the two checkpoints that ever lived on disk, with zero non-200 responses
# and reconciled served/reload counters — plus the shard-pool dedup contract:
# tenants with byte-identical frozen tables share exactly one resident pool
# (tests/integration/tests/hotswap.rs). The workspace run above already
# executed it once; this named stage keeps the zoo serving layer its own
# fast gate.
stage "hot-swap parity + multi-tenant zoo battery (mid-traffic reloads, pool dedup)" \
  env CI_QUICK="$quick" cargo test -q -p dtdbd-integration --test hotswap

if [ "$quick" != "1" ]; then
  stage "kernel parity smoke (blocked/parallel GEMM vs naive reference)" \
    cargo run --release -q -p dtdbd-bench --bin kernels -- --parity-smoke

  stage "bench regression gate (kernels/serving vs committed baselines + sharding)" \
    scripts/check_bench.sh

  stage "http_roundtrip example (train -> checkpoint -> serve over TCP, /metrics lint, /readyz drain)" \
    cargo run --release -q -p dtdbd-bench --example http_roundtrip
fi

stage "cargo fmt --check" \
  cargo fmt --all --check

stage "cargo clippy -- -D warnings" \
  cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 gate passed"
